//! The 48 Python-suite workload programs, in the paper's Fig. 4 order.
//!
//! Each generator returns a complete Pyl program parameterized by a size
//! knob `n`. Programs end by assigning a `result` global so harnesses can
//! verify that a run computed something real.

use crate::{Kind, Suite, Workload};

macro_rules! w {
    ($name:literal, $kind:ident, $base:literal, $f:ident) => {
        Workload {
            name: $name,
            suite: Suite::Python,
            kind: Kind::$kind,
            base: $base,
            source_fn: $f,
        }
    };
}

/// The suite, in the paper's presentation order.
pub static SUITE: &[Workload] = &[
    w!("go", ObjectOriented, 2, py_go),
    w!("float", Numeric, 300, py_float),
    w!("mako", Strings, 30, py_mako),
    w!("telco", Numeric, 400, py_telco),
    w!("chaos", Numeric, 400, py_chaos),
    w!("nbody", Numeric, 40, py_nbody),
    w!("pickle", NativeHeavy, 60, py_pickle),
    w!("eparse", Parsing, 40, py_eparse),
    w!("hexiom", DataStructures, 6, py_hexiom),
    w!("pidigits", Numeric, 60, py_pidigits),
    w!("pyflate", NativeHeavy, 30, py_pyflate),
    w!("rietveld", Strings, 30, py_rietveld),
    w!("spitfire", Strings, 30, py_spitfire),
    w!("html5lib", Parsing, 20, py_html5lib),
    w!("raytrace", Numeric, 6, py_raytrace),
    w!("richards", ObjectOriented, 12, py_richards),
    w!("sym_str", ObjectOriented, 40, py_sym_str),
    w!("unpickle", NativeHeavy, 60, py_unpickle),
    w!("nqueens", DataStructures, 6, py_nqueens),
    w!("tuple_gc", DataStructures, 1500, py_tuple_gc),
    w!("deltablue", ObjectOriented, 30, py_deltablue),
    w!("fannkuch", DataStructures, 7, py_fannkuch),
    w!("pickle_list", NativeHeavy, 40, py_pickle_list),
    w!("regex_v8", NativeHeavy, 25, py_regex_v8),
    w!("sym_sum", ObjectOriented, 40, py_sym_sum),
    w!("pickle_dict", NativeHeavy, 30, py_pickle_dict),
    w!("regex_dna", NativeHeavy, 8, py_regex_dna),
    w!("chameleon", Strings, 25, py_chameleon),
    w!("json_loads", NativeHeavy, 50, py_json_loads),
    w!("pyxl_bench", Strings, 25, py_pyxl_bench),
    w!("scimark_fft", Numeric, 6, py_scimark_fft),
    w!("scimark_lu", Numeric, 8, py_scimark_lu),
    w!("dulwich_log", Strings, 25, py_dulwich_log),
    w!("unpack_seq", DataStructures, 1500, py_unpack_seq),
    w!("json_dumps", NativeHeavy, 50, py_json_dumps),
    w!("regex_effbot", NativeHeavy, 10, py_regex_effbot),
    w!("scimark_sor", Numeric, 10, py_scimark_sor),
    w!("sym_expand", ObjectOriented, 30, py_sym_expand),
    w!("unpickle_list", NativeHeavy, 40, py_unpickle_list),
    w!("crypto_pyaes", Numeric, 10, py_crypto_pyaes),
    w!("regex_compile", NativeHeavy, 60, py_regex_compile),
    w!("spectral_norm", Numeric, 10, py_spectral_norm),
    w!("sym_integrate", ObjectOriented, 25, py_sym_integrate),
    w!("logging_format", Strings, 300, py_logging_format),
    w!("meteor_contest", DataStructures, 5, py_meteor_contest),
    w!("scimark_monte", Numeric, 800, py_scimark_monte),
    w!("scimark_sparse", Numeric, 25, py_scimark_sparse),
    w!("spitfire_cstringio", Strings, 30, py_spitfire_cstringio),
];

// ---- object-oriented simulations -------------------------------------------------

fn py_go(n: u32) -> String {
    format!(
        "
# Simplified Go: stone placement with liberty counting on a small board.
SIZE = 9
board = []
for i in range(SIZE * SIZE):
    board.append(0)

def neighbors(pos):
    out = []
    r = pos // SIZE
    c = pos % SIZE
    if r > 0:
        out.append(pos - SIZE)
    if r < SIZE - 1:
        out.append(pos + SIZE)
    if c > 0:
        out.append(pos - 1)
    if c < SIZE - 1:
        out.append(pos + 1)
    return out

def liberties(pos, color):
    seen = {{}}
    work = [pos]
    libs = 0
    while len(work) > 0:
        p = work.pop()
        if p in seen:
            continue
        seen[p] = 1
        for q in neighbors(p):
            v = board[q]
            if v == 0:
                libs = libs + 1
            elif v == color:
                work.append(q)
    return libs

rand_seed(7)
score = 0
for game in range({n}):
    for i in range(SIZE * SIZE):
        board[i] = 0
    color = 1
    for move in range(60):
        pos = randint(0, SIZE * SIZE - 1)
        if board[pos] == 0:
            board[pos] = color
            l = liberties(pos, color)
            if l == 0:
                board[pos] = 0
            else:
                score = score + l
        color = 3 - color
result = score
"
    )
}

fn py_float(n: u32) -> String {
    format!(
        "
# pyperformance float: points with float attributes, normalized repeatedly.
class Point:
    def __init__(self, i):
        self.x = sin(float(i)) * 2.0 + 1.0
        self.y = cos(float(i)) * 3.0
        self.z = float(i) / 7.0
    def normalize(self):
        norm = sqrt(self.x * self.x + self.y * self.y + self.z * self.z)
        if norm > 0.0:
            self.x = self.x / norm
            self.y = self.y / norm
            self.z = self.z / norm
    def maximize(self, other):
        if other.x > self.x:
            self.x = other.x
        if other.y > self.y:
            self.y = other.y
        if other.z > self.z:
            self.z = other.z

acc = 0.0
for rounds in range({n} // 100 + 1):
    points = []
    for i in range(100):
        points.append(Point(i))
    for p in points:
        p.normalize()
    top = points[0]
    for p in points:
        top.maximize(p)
    acc = acc + top.x + top.y + top.z
result = acc
"
    )
}

fn py_telco(n: u32) -> String {
    format!(
        "
# telco: telephone call billing with banker's-rounding-ish arithmetic.
rand_seed(42)
total_cents = 0
basic_tax = 0
dist_tax = 0
ledger = []
WIN = 1200
for i in range({n}):
    duration = randint(1, 7200)
    rate = 9
    if i % 2 == 1:
        rate = 14
    price = duration * rate // 100
    btax = price * 9 // 100
    total_cents = total_cents + price + btax
    basic_tax = basic_tax + btax
    if i % 2 == 1:
        dtax = price * 62 // 1000
        total_cents = total_cents + dtax
        dist_tax = dist_tax + dtax
    record = (i, duration, price + 1000000)
    if len(ledger) < WIN:
        ledger.append(record)
    else:
        ledger[i % WIN] = record
result = total_cents + basic_tax + dist_tax + len(ledger)
"
    )
}

fn py_chaos(n: u32) -> String {
    format!(
        "
# chaos: the chaosgame fractal — random midpoint jumps toward triangle corners.
corners = [(0.0, 0.0), (1.0, 0.0), (0.5, 0.866)]
rand_seed(1234)
x = 0.3
y = 0.3
hits = {{}}
for i in range({n} * 10):
    k = randint(0, 2)
    c = corners[k]
    x = (x + c[0]) / 2.0
    y = (y + c[1]) / 2.0
    cell = (int(x * 32.0), int(y * 32.0))
    if cell in hits:
        hits[cell] = hits[cell] + 1
    else:
        hits[cell] = 1
total = 0
for cell in hits:
    total = total + hits[cell]
result = total
"
    )
}

fn py_nbody(n: u32) -> String {
    format!(
        "
# nbody: the classic planetary simulation over parallel float lists.
xs = [0.0, 4.84, 8.34, 12.89, 15.37]
ys = [0.0, -1.16, 4.12, -15.11, -25.91]
zs = [0.0, -0.10, -0.40, -0.22, 0.17]
vxs = [0.0, 0.606, -1.010, 0.109, 0.979]
vys = [0.0, 2.811, 1.825, 1.056, 0.594]
vzs = [0.0, -0.025, 0.008, -0.034, -0.034]
ms = [39.47, 0.037, 0.011, 0.0017, 0.0002]
NB = 5
dt = 0.01
for step in range({n} * 8):
    i = 0
    while i < NB:
        j = i + 1
        while j < NB:
            dx = xs[i] - xs[j]
            dy = ys[i] - ys[j]
            dz = zs[i] - zs[j]
            d2 = dx * dx + dy * dy + dz * dz
            mag = dt / (d2 * sqrt(d2))
            vxs[i] = vxs[i] - dx * ms[j] * mag
            vys[i] = vys[i] - dy * ms[j] * mag
            vzs[i] = vzs[i] - dz * ms[j] * mag
            vxs[j] = vxs[j] + dx * ms[i] * mag
            vys[j] = vys[j] + dy * ms[i] * mag
            vzs[j] = vzs[j] + dz * ms[i] * mag
            j = j + 1
        i = i + 1
    for k in range(NB):
        xs[k] = xs[k] + dt * vxs[k]
        ys[k] = ys[k] + dt * vys[k]
        zs[k] = zs[k] + dt * vzs[k]
energy = 0.0
for k in range(NB):
    energy = energy + 0.5 * ms[k] * (vxs[k] * vxs[k] + vys[k] * vys[k] + vzs[k] * vzs[k])
result = energy
"
    )
}

fn py_hexiom(n: u32) -> String {
    format!(
        "
# hexiom: constraint puzzle solving by backtracking on a small hex board.
def solve(cells, constraints, idx, budget):
    if budget[0] <= 0:
        return 0
    budget[0] = budget[0] - 1
    if idx == len(cells):
        for c in constraints:
            total = 0
            for ci in c[0]:
                total = total + cells[ci]
            if total != c[1]:
                return 0
        return 1
    found = 0
    for v in [0, 1]:
        cells[idx] = v
        found = found + solve(cells, constraints, idx + 1, budget)
    cells[idx] = 0
    return found

solutions = 0
for round in range({n}):
    cells = [0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]
    constraints = [([0, 1, 2], 2), ([3, 4, 5], 1), ([6, 7, 8], 2), ([9, 10, 11], 1), ([0, 3, 6, 9], 2)]
    budget = [20000]
    solutions = solutions + solve(cells, constraints, 0, budget)
result = solutions
"
    )
}

fn py_richards(n: u32) -> String {
    format!(
        "
# richards: the classic OS task-scheduler simulation (simplified port).
IDLE = 0
WORKER = 1
HANDLER = 2

class Packet:
    def __init__(self, kind, datum):
        self.kind = kind
        self.datum = datum

class Task:
    def __init__(self, kind, priority):
        self.kind = kind
        self.priority = priority
        self.queue = []
        self.holds = 0
        self.work_done = 0
    def run(self, scheduler):
        if len(self.queue) > 0:
            p = self.queue.pop(0)
            self.work_done = self.work_done + p.datum
            if self.kind == WORKER:
                scheduler.dispatch(HANDLER, Packet(HANDLER, p.datum % 7))
            elif self.kind == HANDLER:
                scheduler.dispatch(IDLE, Packet(IDLE, 1))
        else:
            self.holds = self.holds + 1

class Scheduler:
    def __init__(self):
        self.tasks = [Task(IDLE, 0), Task(WORKER, 1), Task(HANDLER, 2)]
        self.dispatched = 0
    def dispatch(self, kind, packet):
        self.tasks[kind].queue.append(packet)
        self.dispatched = self.dispatched + 1
    def schedule(self, rounds):
        i = 0
        while i < rounds:
            best = self.tasks[0]
            for t in self.tasks:
                if len(t.queue) > len(best.queue):
                    best = t
            best.run(self)
            i = i + 1

sched = Scheduler()
for i in range({n} * 12):
    sched.dispatch(WORKER, Packet(WORKER, i % 11 + 1))
sched.schedule({n} * 40)
total = 0
for t in sched.tasks:
    total = total + t.work_done + t.holds
result = total + sched.dispatched
"
    )
}

fn py_deltablue(n: u32) -> String {
    format!(
        "
# deltablue: one-way constraint propagation (simplified solver).
class Variable:
    def __init__(self, value):
        self.value = value
        self.stay = 0

class EqualScale:
    def __init__(self, src, dst, scale, offset):
        self.src = src
        self.dst = dst
        self.scale = scale
        self.offset = offset
    def execute(self):
        self.dst.value = self.src.value * self.scale + self.offset

chain = []
first = Variable(1)
prev = first
constraints = []
for i in range(20):
    v = Variable(0)
    constraints.append(EqualScale(prev, v, 1, 1))
    chain.append(v)
    prev = v

total = 0
for round in range({n} * 10):
    first.value = round % 100
    for c in constraints:
        c.execute()
    total = total + chain[len(chain) - 1].value
result = total
"
    )
}

// ---- numeric kernels ---------------------------------------------------------------

fn py_pidigits(n: u32) -> String {
    format!(
        "
# pidigits: Rabinowitz–Wagon spigot over an array of small ints (no bignums).
DIGITS = {n}
LEN = DIGITS * 10 // 3 + 2
a = []
for i in range(LEN):
    a.append(2)
digit_sum = 0
produced = 0
predigit = 0
nines = 0
while produced < DIGITS:
    q = 0
    i = LEN - 1
    while i >= 0:
        x = 10 * a[i] + q * (i + 1)
        a[i] = x % (2 * i + 1)
        q = x // (2 * i + 1)
        i = i - 1
    a[0] = q % 10
    q = q // 10
    if q == 9:
        nines = nines + 1
    elif q == 10:
        digit_sum = digit_sum + predigit + 1
        produced = produced + 1
        for k in range(nines):
            digit_sum = digit_sum + 0
            produced = produced + 1
        predigit = 0
        nines = 0
    else:
        digit_sum = digit_sum + predigit
        produced = produced + 1
        predigit = q
        for k in range(nines):
            digit_sum = digit_sum + 9
            produced = produced + 1
        nines = 0
result = digit_sum
"
    )
}

fn py_raytrace(n: u32) -> String {
    format!(
        "
# raytrace: sphere intersection with a vector class (allocation heavy).
class Vec:
    def __init__(self, x, y, z):
        self.x = x
        self.y = y
        self.z = z
    def dot(self, o):
        return self.x * o.x + self.y * o.y + self.z * o.z
    def sub(self, o):
        return Vec(self.x - o.x, self.y - o.y, self.z - o.z)
    def scale(self, k):
        return Vec(self.x * k, self.y * k, self.z * k)

spheres = [(Vec(0.0, 0.0, 10.0), 3.0), (Vec(2.0, 1.0, 6.0), 1.0), (Vec(-2.0, -1.0, 8.0), 1.5)]
W = 24
hits = 0
shade = 0.0
for frame in range({n}):
    for py in range(W):
        for px in range(W):
            dx = (px - W // 2) / 12.0
            dy = (py - W // 2) / 12.0
            d = Vec(dx, dy, 1.0)
            norm = sqrt(d.dot(d))
            d = d.scale(1.0 / norm)
            o = Vec(0.0, 0.0, 0.0)
            best = 1000000.0
            for s in spheres:
                oc = o.sub(s[0])
                b = 2.0 * oc.dot(d)
                c = oc.dot(oc) - s[1] * s[1]
                disc = b * b - 4.0 * c
                if disc > 0.0:
                    t = (0.0 - b - sqrt(disc)) / 2.0
                    if t > 0.0 and t < best:
                        best = t
            if best < 1000000.0:
                hits = hits + 1
                shade = shade + 1.0 / best
result = shade + hits
"
    )
}

fn py_scimark_fft(n: u32) -> String {
    format!(
        "
# scimark_fft: iterative radix-2 FFT over parallel real/imag lists.
N = 64
re = []
im = []
for i in range(N):
    re.append(sin(float(i)))
    im.append(0.0)

def bit_reverse(re, im, N):
    j = 0
    for i in range(N - 1):
        if i < j:
            re[i], re[j] = re[j], re[i]
            im[i], im[j] = im[j], im[i]
        k = N // 2
        while k <= j:
            j = j - k
            k = k // 2
        j = j + k

acc = 0.0
for round in range({n}):
    bit_reverse(re, im, N)
    size = 2
    while size <= N:
        half = size // 2
        ang = -6.283185307179586 / size
        for start in range(0, N, size):
            for k in range(half):
                wr = cos(ang * k)
                wi = sin(ang * k)
                i1 = start + k
                i2 = start + k + half
                tr = wr * re[i2] - wi * im[i2]
                ti = wr * im[i2] + wi * re[i2]
                re[i2] = re[i1] - tr
                im[i2] = im[i1] - ti
                re[i1] = re[i1] + tr
                im[i1] = im[i1] + ti
        size = size * 2
    acc = acc + re[1] + im[1]
result = acc
"
    )
}

fn py_scimark_lu(n: u32) -> String {
    format!(
        "
# scimark_lu: LU factorization with partial pivoting on a dense matrix.
SIZE = 12
acc = 0.0
for round in range({n}):
    a = []
    for i in range(SIZE):
        row = []
        for j in range(SIZE):
            row.append(float((i * 7 + j * 13) % 17) + 1.0)
        a.append(row)
    for col in range(SIZE - 1):
        piv = col
        for r in range(col + 1, SIZE):
            if abs(a[r][col]) > abs(a[piv][col]):
                piv = r
        if piv != col:
            a[col], a[piv] = a[piv], a[col]
        if a[col][col] != 0.0:
            for r in range(col + 1, SIZE):
                f = a[r][col] / a[col][col]
                for c in range(col, SIZE):
                    a[r][c] = a[r][c] - f * a[col][c]
    for i in range(SIZE):
        acc = acc + a[i][i]
result = acc
"
    )
}

fn py_scimark_sor(n: u32) -> String {
    format!(
        "
# scimark_sor: successive over-relaxation on a 2-D grid.
G = 16
grid = []
for i in range(G):
    row = []
    for j in range(G):
        row.append(float((i * j) % 5))
    grid.append(row)
omega = 1.25
for sweep in range({n} * 4):
    for i in range(1, G - 1):
        row = grid[i]
        up = grid[i - 1]
        down = grid[i + 1]
        for j in range(1, G - 1):
            row[j] = omega * 0.25 * (up[j] + down[j] + row[j - 1] + row[j + 1]) + (1.0 - omega) * row[j]
total = 0.0
for i in range(G):
    for j in range(G):
        total = total + grid[i][j]
result = total
"
    )
}

fn py_scimark_monte(n: u32) -> String {
    format!(
        "
# scimark_monte: Monte Carlo pi estimation.
rand_seed(17)
inside = 0
for i in range({n} * 10):
    x = rand()
    y = rand()
    if x * x + y * y <= 1.0:
        inside = inside + 1
result = 4.0 * inside / ({n} * 10)
"
    )
}

fn py_scimark_sparse(n: u32) -> String {
    format!(
        "
# scimark_sparse: sparse matrix-vector multiply in CSR-like form.
N = 100
NZ = 5
vals = []
cols = []
for i in range(N * NZ):
    vals.append(float(i % 7) + 0.5)
    cols.append((i * 31) % N)
x = []
for i in range(N):
    x.append(1.0 + float(i) / N)
acc = 0.0
for round in range({n} * 4):
    y = []
    for r in range(N):
        total = 0.0
        base = r * NZ
        for k in range(NZ):
            total = total + vals[base + k] * x[cols[base + k]]
        y.append(total)
    acc = acc + y[N - 1]
result = acc
"
    )
}

fn py_spectral_norm(n: u32) -> String {
    format!(
        "
# spectral_norm: power iteration on the infinite matrix A[i][j].
def a(i, j):
    return 1.0 / ((i + j) * (i + j + 1) / 2 + i + 1)

def mult_av(v, out, N):
    for i in range(N):
        total = 0.0
        for j in range(N):
            total = total + a(i, j) * v[j]
        out[i] = total

def mult_atv(v, out, N):
    for i in range(N):
        total = 0.0
        for j in range(N):
            total = total + a(j, i) * v[j]
        out[i] = total

N = 24
u = []
v = []
tmp = []
for i in range(N):
    u.append(1.0)
    v.append(0.0)
    tmp.append(0.0)
for round in range({n}):
    mult_av(u, tmp, N)
    mult_atv(tmp, v, N)
    mult_av(v, tmp, N)
    mult_atv(tmp, u, N)
vbv = 0.0
vv = 0.0
for i in range(N):
    vbv = vbv + u[i] * v[i]
    vv = vv + v[i] * v[i]
result = sqrt(vbv / vv)
"
    )
}

fn py_crypto_pyaes(n: u32) -> String {
    format!(
        "
# crypto_pyaes: byte-level substitution/permutation rounds over int lists.
sbox = []
for i in range(256):
    sbox.append((i * 7 + 99) % 256)
state = []
for i in range(16):
    state.append(i * 11 % 256)
key = []
for i in range(16):
    key.append((i * 31 + 5) % 256)
checksum = 0
for block in range({n} * 20):
    for r in range(10):
        for i in range(16):
            state[i] = sbox[state[i] ^ key[i]]
        t = state[0]
        for i in range(15):
            state[i] = state[i + 1]
        state[15] = t
        for i in range(0, 16, 4):
            a = state[i]
            b = state[i + 1]
            c = state[i + 2]
            d = state[i + 3]
            state[i] = a ^ b
            state[i + 1] = b ^ c
            state[i + 2] = c ^ d
            state[i + 3] = d ^ a
    checksum = (checksum + state[block % 16]) % 1000000007
result = checksum
"
    )
}

// ---- container churn --------------------------------------------------------------------

fn py_nqueens(n: u32) -> String {
    format!(
        "
# nqueens: the classic backtracking solver.
def solve(row, cols, diag1, diag2, N):
    if row == N:
        return 1
    count = 0
    for c in range(N):
        d1 = row - c + N
        d2 = row + c
        if cols[c] == 0 and diag1[d1] == 0 and diag2[d2] == 0:
            cols[c] = 1
            diag1[d1] = 1
            diag2[d2] = 1
            count = count + solve(row + 1, cols, diag1, diag2, N)
            cols[c] = 0
            diag1[d1] = 0
            diag2[d2] = 0
    return count

total = 0
for round in range({n}):
    N = 7
    cols = [0] * N
    diag1 = [0] * (2 * N + 1)
    diag2 = [0] * (2 * N + 1)
    total = total + solve(0, cols, diag1, diag2, N)
result = total
"
    )
}

fn py_tuple_gc(n: u32) -> String {
    format!(
        "
# tuple_gc: allocate short-lived tuples as fast as possible (GC stress).
total = 0
for i in range({n} * 10):
    t = (i, i + 1, i + 2)
    u = (t[2], t[0])
    total = total + u[0] - u[1]
result = total
"
    )
}

fn py_fannkuch(n: u32) -> String {
    format!(
        "
# fannkuch: pancake flipping over permutations.
def fannkuch(N):
    perm1 = []
    for i in range(N):
        perm1.append(i)
    count = [0] * N
    max_flips = 0
    checksum = 0
    r = N
    sign = 1
    while True:
        if r != 1:
            for i in range(1, r):
                count[i] = i
            r = 1
        perm = perm1[:]
        flips = 0
        k = perm[0]
        while k != 0:
            i = 0
            j = k
            while i < j:
                perm[i], perm[j] = perm[j], perm[i]
                i = i + 1
                j = j - 1
            flips = flips + 1
            k = perm[0]
        if flips > max_flips:
            max_flips = flips
        checksum = checksum + sign * flips
        sign = 0 - sign
        while True:
            if r == N:
                return checksum * 1000 + max_flips
            first = perm1[0]
            for i in range(r):
                perm1[i] = perm1[i + 1]
            perm1[r] = first
            count[r] = count[r] - 1
            if count[r] > 0:
                break
            r = r + 1

acc = 0
for round in range({n} // 6 + 1):
    acc = acc + fannkuch(6)
result = acc
"
    )
}

fn py_unpack_seq(n: u32) -> String {
    format!(
        "
# unpack_seq: tuple packing/unpacking in a tight loop.
total = 0
for i in range({n} * 20):
    a, b, c, d = (i, i + 1, i + 2, i + 3)
    x, y = (b, a)
    total = total + a + d - x + y
result = total
"
    )
}

fn py_meteor_contest(n: u32) -> String {
    format!(
        "
# meteor_contest: bitmask puzzle packing (pieces onto a small board).
def place(board, pieces, idx, budget):
    if budget[0] <= 0:
        return 0
    budget[0] = budget[0] - 1
    if idx == len(pieces):
        return 1
    count = 0
    p = pieces[idx]
    for shift in range(12):
        mask = p << shift
        if mask < 65536 and (board & mask) == 0:
            count = count + place(board | mask, pieces, idx + 1, budget)
    return count

total = 0
for round in range({n}):
    pieces = [3, 5, 9, 6, 12]
    budget = [40000]
    total = total + place(0, pieces, 0, budget)
result = total
"
    )
}

// ---- strings and templates ------------------------------------------------------------------

fn py_mako(n: u32) -> String {
    format!(
        "
# mako: template rendering — substitution into page fragments.
def render_row(name, value):
    return '<tr><td>' + name + '</td><td>' + str(value) + '</td></tr>'

pages = 0
size = 0
for p in range({n}):
    rows = []
    for i in range(40):
        rows.append(render_row('item_' + str(i), i * p))
    header = '<html><head><title>page %d</title></head><body>' % p
    body = '<table>' + ''.join(rows) + '</table>'
    page = header + body + '</body></html>'
    pages = pages + 1
    size = size + len(page)
result = size
"
    )
}

fn py_rietveld(n: u32) -> String {
    format!(
        "
# rietveld: code-review page assembly — diffs, comments, templating.
def format_diff_line(kind, text):
    if kind == 0:
        return '  ' + text
    elif kind == 1:
        return '+ ' + text
    else:
        return '- ' + text

issues = []
for i in range({n}):
    issue = {{'id': i, 'title': 'Issue %d' % i, 'comments': []}}
    for c in range(6):
        issue['comments'].append({{'author': 'user%d' % (c % 3), 'text': 'comment body %d' % c}})
    issues.append(issue)

rendered = 0
for issue in issues:
    lines = []
    for k in range(30):
        lines.append(format_diff_line(k % 3, 'line of code number %d' % k))
    page = issue['title'] + '\\n' + '\\n'.join(lines)
    for c in issue['comments']:
        page = page + '\\n' + c['author'] + ': ' + c['text']
    rendered = rendered + len(page)
result = rendered
"
    )
}

fn py_spitfire(n: u32) -> String {
    format!(
        "
# spitfire: table template rendering via string concatenation; recently
# rendered pages stay referenced, as in a response cache.
size = 0
cache = []
WIN = 140
idx = 0
for page in range({n}):
    out = '<table>'
    for r in range(25):
        row = '<tr>'
        for c in range(8):
            row = row + '<td>' + str(r * c) + '</td>'
        out = out + row + '</tr>'
    out = out + '</table>'
    size = size + len(out)
    if len(cache) < WIN:
        cache.append(out)
    else:
        cache[idx % WIN] = out
    idx = idx + 1
result = size + len(cache)
"
    )
}

fn py_spitfire_cstringio(n: u32) -> String {
    format!(
        "
# spitfire_cstringio: the same template but buffered through a list + join.
size = 0
for page in range({n}):
    buf = []
    buf.append('<table>')
    for r in range(25):
        buf.append('<tr>')
        for c in range(8):
            buf.append('<td>')
            buf.append(str(r * c))
            buf.append('</td>')
        buf.append('</tr>')
    buf.append('</table>')
    out = ''.join(buf)
    size = size + len(out)
result = size
"
    )
}

fn py_chameleon(n: u32) -> String {
    format!(
        "
# chameleon: attribute-escaped template rendering.
def escape(s):
    s = s.replace('&', '&amp;')
    s = s.replace('<', '&lt;')
    return s.replace('>', '&gt;')

size = 0
for page in range({n}):
    rows = []
    for i in range(30):
        cell = escape('<val & %d>' % i)
        rows.append('<td class=\"c%d\">%s</td>' % (i % 4, cell))
    size = size + len('<tr>' + ''.join(rows) + '</tr>')
result = size
"
    )
}

fn py_pyxl_bench(n: u32) -> String {
    format!(
        "
# pyxl_bench: HTML components as objects rendered to strings.
class Element:
    def __init__(self, tag):
        self.tag = tag
        self.children = []
        self.attrs = {{}}
    def append(self, child):
        self.children.append(child)
        return self
    def attr(self, k, v):
        self.attrs[k] = v
        return self
    def render(self):
        parts = ['<' + self.tag]
        for k in self.attrs:
            parts.append(' ' + k + '=\"' + self.attrs[k] + '\"')
        parts.append('>')
        for c in self.children:
            parts.append(c.render())
        parts.append('</' + self.tag + '>')
        return ''.join(parts)

class Text:
    def __init__(self, s):
        self.s = s
    def render(self):
        return self.s

size = 0
mounted = []
WIN = 160
idx = 0
for page in range({n}):
    root = Element('div').attr('class', 'page')
    for i in range(12):
        item = Element('span').attr('id', 'item%d' % i)
        item.append(Text('value ' + str(i * page)))
        root.append(item)
    size = size + len(root.render())
    if len(mounted) < WIN:
        mounted.append(root)
    else:
        mounted[idx % WIN] = root
    idx = idx + 1
result = size + len(mounted)
"
    )
}

fn py_dulwich_log(n: u32) -> String {
    format!(
        "
# dulwich_log: walking a synthetic commit graph and formatting the log.
commits = []
parent = 0
for i in range({n} * 4):
    h = md5('commit-%d' % i) % 100000
    commits.append({{'id': h, 'parent': parent, 'author': 'dev%d' % (i % 5), 'msg': 'change number %d' % i}})
    parent = h

log_size = 0
for c in commits:
    entry = 'commit %d\\nAuthor: %s\\n\\n    %s\\n' % (c['id'], c['author'], c['msg'])
    log_size = log_size + len(entry)
result = log_size
"
    )
}

fn py_logging_format(n: u32) -> String {
    format!(
        "
# logging_format: building log records with %-formatting (discarded).
emitted = 0
ring = []
WIN = 2200
for i in range({n} * 4):
    level = 'INFO'
    if i % 10 == 0:
        level = 'WARNING'
    record = '%s:%s:%d: payload=%d size=%d' % (level, 'module.sub', i, i * 3, i % 77)
    if len(ring) < WIN:
        ring.append(record)
    else:
        ring[i % WIN] = record
    if i % 50 == 0:
        emitted = emitted + len(record)
result = emitted + len(ring)
"
    )
}

// ---- parsers -----------------------------------------------------------------------------------

fn py_eparse(n: u32) -> String {
    format!(
        "
# eparse: a pure-guest tokenizer + recursive-descent expression evaluator.
def tokenize(s):
    toks = []
    i = 0
    while i < len(s):
        c = s[i]
        if c == ' ':
            i = i + 1
        elif c >= '0' and c <= '9':
            v = 0
            while i < len(s) and s[i] >= '0' and s[i] <= '9':
                v = v * 10 + ord(s[i]) - 48
                i = i + 1
            toks.append(('num', v))
        else:
            toks.append(('op', c))
            i = i + 1
    return toks

def parse_expr(toks, pos):
    v, pos = parse_term(toks, pos)
    while pos < len(toks) and toks[pos][0] == 'op' and (toks[pos][1] == '+' or toks[pos][1] == '-'):
        op = toks[pos][1]
        rhs, pos = parse_term(toks, pos + 1)
        if op == '+':
            v = v + rhs
        else:
            v = v - rhs
    return (v, pos)

def parse_term(toks, pos):
    v, pos = parse_atom(toks, pos)
    while pos < len(toks) and toks[pos][0] == 'op' and toks[pos][1] == '*':
        rhs, pos = parse_atom(toks, pos + 1)
        v = v * rhs
    return (v, pos)

def parse_atom(toks, pos):
    t = toks[pos]
    if t[0] == 'num':
        return (t[1], pos + 1)
    if t[1] == '(':
        v, pos = parse_expr(toks, pos + 1)
        return (v, pos + 1)
    return (0, pos + 1)

total = 0
tok_cache = []
WIN = 220
idx = 0
for i in range({n} * 4):
    src = '%d + %d * (%d - %d) + %d' % (i, i % 7, i % 13, i % 5, i % 3)
    toks = tokenize(src)
    v, pos = parse_expr(toks, 0)
    total = total + v
    if len(tok_cache) < WIN:
        tok_cache.append(toks)
    else:
        tok_cache[idx % WIN] = toks
    idx = idx + 1
result = total + len(tok_cache)
"
    )
}

fn py_html5lib(n: u32) -> String {
    format!(
        "
# html5lib: a tag/text/attribute state machine over HTML-ish input.
def parse_html(s):
    tags = {{}}
    texts = 0
    i = 0
    while i < len(s):
        if s[i] == '<':
            j = i + 1
            name = ''
            while j < len(s) and s[j] != '>' and s[j] != ' ':
                name = name + s[j]
                j = j + 1
            while j < len(s) and s[j] != '>':
                j = j + 1
            if name in tags:
                tags[name] = tags[name] + 1
            else:
                tags[name] = 1
            i = j + 1
        else:
            texts = texts + 1
            i = i + 1
    total = texts
    for t in tags:
        total = total + tags[t]
    return total

doc = '<html><body>'
for i in range(20):
    doc = doc + '<div class=\"row\"><span>cell %d</span><a href=\"#\">link</a></div>' % i
doc = doc + '</body></html>'

total = 0
for round in range({n}):
    total = total + parse_html(doc)
result = total
"
    )
}

// ---- symbolic (sympy-analog) ----------------------------------------------------------------------

const SYM_PRELUDE: &str = "
# Tiny symbolic-expression engine shared by the sym_* benchmarks.
class Sym:
    def __init__(self, op, left, right, name, val):
        self.op = op
        self.left = left
        self.right = right
        self.name = name
        self.val = val

def sym_var(name):
    return Sym('var', None, None, name, 0)

def sym_num(v):
    return Sym('num', None, None, '', v)

def sym_add(a, b):
    return Sym('+', a, b, '', 0)

def sym_mul(a, b):
    return Sym('*', a, b, '', 0)

def sym_eval(e, env):
    if e.op == 'num':
        return e.val
    if e.op == 'var':
        return env[e.name]
    l = sym_eval(e.left, env)
    r = sym_eval(e.right, env)
    if e.op == '+':
        return l + r
    return l * r

def sym_to_str(e):
    if e.op == 'num':
        return str(e.val)
    if e.op == 'var':
        return e.name
    return '(' + sym_to_str(e.left) + ' ' + e.op + ' ' + sym_to_str(e.right) + ')'

def sym_expand(e):
    if e.op == '*' and e.left.op == '+':
        return sym_add(sym_expand(sym_mul(e.left.left, e.right)), sym_expand(sym_mul(e.left.right, e.right)))
    if e.op == '*' and e.right.op == '+':
        return sym_add(sym_expand(sym_mul(e.left, e.right.left)), sym_expand(sym_mul(e.left, e.right.right)))
    if e.op == '+' or e.op == '*':
        return Sym(e.op, sym_expand(e.left), sym_expand(e.right), '', 0)
    return e
";

fn py_sym_str(n: u32) -> String {
    format!(
        "{SYM_PRELUDE}
size = 0
for i in range({n} * 2):
    x = sym_var('x')
    e = sym_add(sym_mul(sym_num(i % 9), x), sym_mul(x, sym_add(x, sym_num(3))))
    for k in range(3):
        e = sym_add(e, sym_mul(sym_num(k), x))
    size = size + len(sym_to_str(e))
result = size
"
    )
}

fn py_sym_sum(n: u32) -> String {
    format!(
        "{SYM_PRELUDE}
total = 0
for i in range({n} * 2):
    x = sym_var('x')
    e = sym_num(0)
    for k in range(8):
        e = sym_add(e, sym_mul(sym_num(k), x))
    env = {{'x': i % 11}}
    total = total + sym_eval(e, env)
result = total
"
    )
}

fn py_sym_expand(n: u32) -> String {
    format!(
        "{SYM_PRELUDE}
total = 0
for i in range({n} * 2):
    x = sym_var('x')
    y = sym_var('y')
    e = sym_mul(sym_add(x, sym_num(i % 5)), sym_add(y, sym_num(3)))
    e = sym_mul(e, sym_add(x, y))
    ex = sym_expand(e)
    env = {{'x': 2, 'y': i % 7}}
    total = total + sym_eval(ex, env)
result = total
"
    )
}

fn py_sym_integrate(n: u32) -> String {
    format!(
        "{SYM_PRELUDE}
def sym_diff(e, name):
    if e.op == 'num':
        return sym_num(0)
    if e.op == 'var':
        if e.name == name:
            return sym_num(1)
        return sym_num(0)
    if e.op == '+':
        return sym_add(sym_diff(e.left, name), sym_diff(e.right, name))
    return sym_add(sym_mul(sym_diff(e.left, name), e.right), sym_mul(e.left, sym_diff(e.right, name)))

# 'Integrate' by trapezoid evaluation of the expression.
total = 0.0
for i in range({n}):
    x = sym_var('x')
    e = sym_add(sym_mul(x, x), sym_mul(sym_num(i % 4), x))
    de = sym_diff(e, 'x')
    area = 0.0
    for step in range(20):
        env = {{'x': step}}
        area = area + sym_eval(e, env) + sym_eval(de, env) * 0.5
    total = total + area
result = total
"
    )
}

// ---- native-library-dominated ("C library") -------------------------------------------------------

fn py_pickle(n: u32) -> String {
    format!(
        "
# pickle: serialize a nested structure over and over (C library heavy).
obj = {{'strs': ['alpha', 'beta', 'gamma'], 'nested': {{'a': (1, 2), 'b': [3.5, 4.5]}}, 'flag': True}}
ints = []
for i in range(120):
    ints.append(i * 7)
obj['ints'] = ints
size = 0
for i in range({n}):
    s = pickle_dumps(obj)
    size = size + len(s)
result = size
"
    )
}

fn py_unpickle(n: u32) -> String {
    format!(
        "
# unpickle: deserialize the same payload repeatedly.
obj = {{'strs': ['alpha', 'beta', 'gamma'], 'nested': {{'a': (1, 2), 'b': [3.5, 4.5]}}, 'flag': True}}
ints = []
for i in range(120):
    ints.append(i * 7)
obj['ints'] = ints
payload = pickle_dumps(obj)
total = 0
for i in range({n}):
    back = pickle_loads(payload)
    total = total + len(back['ints'])
result = total
"
    )
}

fn py_pickle_list(n: u32) -> String {
    format!(
        "
# pickle_list: serialize a large flat list.
data = []
for i in range(800):
    data.append(i * 3)
size = 0
for round in range({n} // 2 + 1):
    size = size + len(pickle_dumps(data))
result = size
"
    )
}

fn py_pickle_dict(n: u32) -> String {
    format!(
        "
# pickle_dict: serialize a string-keyed dict.
data = {{}}
for i in range(300):
    data['key_%d' % i] = i * i
size = 0
for round in range({n} // 2 + 1):
    size = size + len(pickle_dumps(data))
result = size
"
    )
}

fn py_unpickle_list(n: u32) -> String {
    format!(
        "
# unpickle_list: deserialize a large flat list repeatedly.
data = []
for i in range(800):
    data.append(i * 3)
payload = pickle_dumps(data)
total = 0
for round in range({n} // 2 + 1):
    back = pickle_loads(payload)
    total = total + back[799]
result = total
"
    )
}

fn py_json_dumps(n: u32) -> String {
    format!(
        "
# json_dumps: serialize an API-response-shaped object.
resp = {{'status': 'ok', 'items': [], 'meta': {{'page': 1, 'total': 42}}}}
for i in range(25):
    resp['items'].append({{'id': i, 'name': 'obj%d' % i, 'score': i * 1.5, 'tags': ['a', 'b']}})
size = 0
for round in range({n} * 2):
    size = size + len(json_dumps(resp))
result = size
"
    )
}

fn py_json_loads(n: u32) -> String {
    format!(
        "
# json_loads: parse an API-response-shaped document.
resp = {{'status': 'ok', 'items': [], 'meta': {{'page': 1, 'total': 42}}}}
for i in range(25):
    resp['items'].append({{'id': i, 'name': 'obj%d' % i, 'score': i * 1.5, 'tags': ['a', 'b']}})
payload = json_dumps(resp)
total = 0
for round in range({n} * 2):
    back = json_loads(payload)
    total = total + back['meta']['total']
result = total
"
    )
}

fn py_regex_v8(n: u32) -> String {
    format!(
        "
# regex_v8: a mix of patterns over web-page-like text.
text = ''
for i in range(15):
    text = text + 'var x%d = call%d(arg); // comment %d\\n' % (i, i, i)
patterns = ['var [a-z0-9]+', 'call[0-9]+', '//.*', '[a-z]+[0-9]+']
matches = 0
for round in range({n}):
    for p in patterns:
        found = re_findall(p, text)
        matches = matches + len(found)
result = matches
"
    )
}

fn py_regex_dna(n: u32) -> String {
    format!(
        "
# regex_dna: nucleotide patterns over a synthetic genome.
rand_seed(99)
chunks = ['acgta', 'ggtac', 'aatcg', 'tacgg', 'gtaaa', 'ccagt', 'tttac', 'agggt']
parts = []
for i in range(400):
    parts.append(chunks[randint(0, 7)])
genome = ''.join(parts)
patterns = ['agggtaaa|tttaccct', '[cgt]gggtaaa', 'a[act]ggtaaa', 'ag[act]gtaaa', 'agg[act]taaa']
count = 0
for round in range({n} * 2):
    for p in patterns:
        count = count + len(re_findall(p, genome))
result = count
"
    )
}

fn py_regex_effbot(n: u32) -> String {
    format!(
        "
# regex_effbot: many small matches over structured text.
lines = []
for i in range(160):
    lines.append('field%d=value%d;' % (i, i * 7))
text = ''.join(lines)
patterns = ['field15[0-9]=', 'value10[0-9][0-9];', 'f[a-z]+99=', 'x+y', 'va[kl]ue1111;']
hits = 0
for round in range({n} * 2):
    for p in patterns:
        if re_search(p, text):
            hits = hits + 1
result = hits
"
    )
}

fn py_regex_compile(n: u32) -> String {
    format!(
        "
# regex_compile: pattern compilation dominates (fresh pattern per call).
hay_parts = []
for i in range(60):
    hay_parts.append('x%dq%dy%d ' % (i % 10, i * 13, i % 7))
hay = ''.join(hay_parts)
hits = 0
for i in range({n}):
    p = 'x%d[0-9]+y%d' % (i % 10, i % 7)
    if re_search(p, hay):
        hits = hits + 1
result = hits
"
    )
}

fn py_pyflate(n: u32) -> String {
    format!(
        "
# pyflate: compression over repetitive text (zlib-analog native).
chunk = ''
for i in range(20):
    chunk = chunk + 'abcabcabc%d' % i + 'x' * 10
size = 0
for round in range({n} * 2):
    z = compress(chunk)
    size = size + len(z)
result = size
"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn suite_has_48_entries() {
        assert_eq!(SUITE.len(), 48);
    }

    #[test]
    fn all_sources_are_nonempty_and_scaled() {
        for w in SUITE {
            let src = w.source(Scale::Tiny);
            assert!(src.contains("result"), "{} lacks a result", w.name);
            assert!(src.len() > 80, "{} suspiciously small", w.name);
        }
    }
}
