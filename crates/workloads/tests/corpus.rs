//! Structural checks over the whole workload corpus: every program
//! compiles to well-formed bytecode at every scale and actually exercises
//! the language features its behavioural class promises.

use qoa_frontend::{CodeKind, Opcode};
use qoa_workloads::{jetstream_suite, python_suite, Kind, Scale, Workload};

fn all_workloads() -> impl Iterator<Item = &'static Workload> {
    python_suite().iter().chain(jetstream_suite().iter())
}

#[test]
fn every_workload_compiles_at_every_scale() {
    for w in all_workloads() {
        for scale in [Scale::Tiny, Scale::Small, Scale::Full] {
            let code = qoa_frontend::compile(&w.source(scale))
                .unwrap_or_else(|e| panic!("{} @ {scale:?}: {e}", w.name));
            for c in code.iter_all() {
                c.validate()
                    .unwrap_or_else(|e| panic!("{} @ {scale:?}: {e}", w.name));
            }
        }
    }
}

#[test]
fn scale_changes_only_the_size_knob() {
    for w in all_workloads() {
        let tiny = w.source(Scale::Tiny);
        let full = w.source(Scale::Full);
        // The program text differs only in embedded numbers; its structure
        // (statement count) must be identical.
        assert_eq!(
            tiny.lines().count(),
            full.lines().count(),
            "{}: scales change program structure",
            w.name
        );
    }
}

#[test]
fn every_workload_contains_a_loop() {
    for w in all_workloads() {
        let code = qoa_frontend::compile(&w.source(Scale::Tiny)).expect("compiles");
        let has_loop = code
            .iter_all()
            .iter()
            .any(|c| c.code.iter().any(|i| i.op == Opcode::SetupLoop));
        assert!(has_loop, "{} has no loop — nothing to measure", w.name);
    }
}

#[test]
fn object_oriented_workloads_define_classes() {
    for w in all_workloads().filter(|w| w.kind == Kind::ObjectOriented) {
        let code = qoa_frontend::compile(&w.source(Scale::Tiny)).expect("compiles");
        let parts = code.iter_all();
        let has_class = parts.iter().any(|c| c.kind == CodeKind::ClassBody)
            // Some OO solvers use recursive functions over structures
            // instead of classes (hexiom-style); accept attribute traffic
            // or recursive function decomposition.
            || parts
                .iter()
                .any(|c| c.code.iter().any(|i| i.op == Opcode::LoadAttr))
            || parts.len() > 2;
        assert!(has_class, "{} has no OO structure", w.name);
    }
}

#[test]
fn native_heavy_workloads_call_the_library() {
    // The C-library group must reference at least one extension-module
    // builtin by name.
    let lib_names = [
        "pickle_dumps",
        "pickle_loads",
        "json_dumps",
        "json_loads",
        "re_search",
        "re_match",
        "re_findall",
        "crc32",
        "md5",
        "compress",
    ];
    for w in all_workloads().filter(|w| w.kind == Kind::NativeHeavy) {
        let src = w.source(Scale::Tiny);
        assert!(
            lib_names.iter().any(|n| src.contains(n)),
            "{} marked NativeHeavy but calls no extension module",
            w.name
        );
    }
}

#[test]
fn numeric_workloads_use_numeric_operations() {
    for w in all_workloads().filter(|w| w.kind == Kind::Numeric) {
        let code = qoa_frontend::compile(&w.source(Scale::Tiny)).expect("compiles");
        let numeric_ops = code
            .iter_all()
            .iter()
            .flat_map(|c| c.code.clone())
            .filter(|i| {
                matches!(
                    i.op,
                    Opcode::BinaryAdd
                        | Opcode::BinarySubtract
                        | Opcode::BinaryMultiply
                        | Opcode::BinaryDivide
                        | Opcode::BinaryFloorDivide
                        | Opcode::BinaryModulo
                        | Opcode::BinaryXor
                        | Opcode::BinaryAnd
                )
            })
            .count();
        assert!(numeric_ops >= 4, "{}: only {numeric_ops} numeric ops", w.name);
    }
}

#[test]
fn suites_cover_all_behavioural_classes() {
    for suite in [python_suite(), jetstream_suite()] {
        for kind in [
            Kind::Numeric,
            Kind::ObjectOriented,
            Kind::Strings,
            Kind::Parsing,
            Kind::DataStructures,
            Kind::NativeHeavy,
        ] {
            assert!(
                suite.iter().any(|w| w.kind == kind),
                "suite missing class {kind:?}"
            );
        }
    }
}
