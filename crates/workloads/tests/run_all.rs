//! Executes every workload of both suites under all three run-time
//! configurations and cross-checks the computed results.

use qoa_jit::{JitConfig, PyPyVm};
use qoa_model::CountingSink;
use qoa_vm::{HeapMode, Vm, VmConfig};
use qoa_workloads::{jetstream_suite, python_suite, Scale, Workload};

const FUEL: u64 = 200_000_000;

fn run_cpython(src: &str) -> (Option<String>, u64) {
    let cfg = VmConfig { heap: HeapMode::Rc, max_steps: FUEL, ..VmConfig::default() };
    let code = qoa_frontend::compile(src).expect("compiles");
    let mut vm = Vm::new(cfg, CountingSink::new());
    vm.load_program(&code);
    vm.run().unwrap_or_else(|e| panic!("cpython run failed: {e}"));
    let result = vm.global_display("result");
    let (sink, _) = vm.finish();
    (result, sink.total())
}

fn run_pypy(src: &str, jit: bool) -> (Option<String>, u64) {
    let cfg = if jit {
        JitConfig { max_steps: FUEL, ..JitConfig::default() }
    } else {
        JitConfig { max_steps: FUEL, ..JitConfig::interpreter_only() }
    };
    let code = qoa_frontend::compile(src).expect("compiles");
    let mut vm = PyPyVm::new(cfg, CountingSink::new());
    vm.load_program(&code);
    vm.run().unwrap_or_else(|e| panic!("pypy(jit={jit}) run failed: {e}"));
    let result = vm.vm.global_display("result");
    let bytecodes = vm.vm.stats().bytecodes;
    (result, bytecodes)
}

fn check_workload(w: &Workload) {
    eprintln!("running {}", w.name);
    let src = w.source(Scale::Tiny);
    let (r_c, micro_ops) = run_cpython(&src);
    let (r_i, _) = run_pypy(&src, false);
    let (r_j, _) = run_pypy(&src, true);
    assert!(
        r_c.is_some(),
        "{}: no `result` global after the run",
        w.name
    );
    assert_eq!(r_c, r_i, "{}: CPython vs PyPy-no-JIT disagree", w.name);
    assert_eq!(r_c, r_j, "{}: CPython vs PyPy-JIT disagree", w.name);
    assert!(
        micro_ops > 50_000,
        "{}: only {micro_ops} micro-ops at Tiny scale — too trivial to measure",
        w.name
    );
}

#[test]
fn python_suite_runs_identically_everywhere() {
    for w in python_suite() {
        check_workload(w);
    }
}

#[test]
fn jetstream_suite_runs_identically_everywhere() {
    for w in jetstream_suite() {
        check_workload(w);
    }
}

#[test]
fn jit_actually_compiles_most_python_workloads() {
    let mut compiled = 0;
    let mut total = 0;
    for w in python_suite() {
        let src = w.source(Scale::Tiny);
        let code = qoa_frontend::compile(&src).expect("compiles");
        let mut vm = PyPyVm::new(
            JitConfig { max_steps: FUEL, ..JitConfig::default() },
            CountingSink::new(),
        );
        vm.load_program(&code);
        vm.run().unwrap_or_else(|e| panic!("{}: {e}", w.name));
        total += 1;
        if vm.jit_stats().traces_compiled > 0 {
            compiled += 1;
        }
    }
    assert!(
        compiled * 10 >= total * 7,
        "only {compiled}/{total} workloads triggered the JIT"
    );
}
