//! Property tests for the front end: totality (no panics on arbitrary
//! input) and structural validity of everything that compiles.

use proptest::prelude::*;

proptest! {
    /// The lexer+parser never panic, whatever bytes come in.
    #[test]
    fn parser_is_total(src in "[ -~\\n\\t]{0,200}") {
        let _ = qoa_frontend::parse(&src);
    }

    /// The full compile pipeline (lex, parse, code generation) never
    /// panics either: arbitrary input either compiles or reports a typed
    /// compile error.
    #[test]
    fn compile_is_total(src in "[ -~\\n\\t]{0,200}") {
        let _ = qoa_frontend::compile(&src);
    }

    /// Statement-shaped fuzz hits the code generator much more often than
    /// raw character soup; it must be panic-free too.
    #[test]
    fn compile_is_total_on_statement_soup(
        stmts in proptest::collection::vec(
            prop_oneof![
                "[a-z]{1,4} = [0-9]{1,4}",
                "[a-z]{1,4} = [a-z]{1,4} [+*-] [0-9]{1,3}",
                "if [a-z]{1,4}:",
                "    [a-z]{1,4} = [0-9]{1,3}",
                "while [a-z]{1,4}:",
                "def [a-z]{1,4}\\([a-z]{0,3}\\):",
                "    return [a-z0-9]{1,4}",
                "for [a-z]{1,2} in range\\([0-9]{1,3}\\):",
            ],
            0..12,
        ),
    ) {
        let mut src = stmts.join("\n");
        src.push('\n');
        let _ = qoa_frontend::compile(&src);
    }

    /// Anything that compiles produces structurally valid bytecode, down
    /// through every nested code object.
    #[test]
    fn compiled_code_validates(
        names in proptest::collection::vec("[a-z][a-z0-9_]{0,6}", 1..6),
        vals in proptest::collection::vec(-100i64..100, 1..6),
    ) {
        let mut src = String::new();
        for (n, v) in names.iter().zip(vals.iter()) {
            src.push_str(&format!("{n} = {v}\n"));
        }
        src.push_str(&format!("def f(x):\n    return x + {}\n", vals[0]));
        src.push_str(&format!("r = f({})\n", vals[vals.len() - 1]));
        if let Ok(code) = qoa_frontend::compile(&src) {
            for c in code.iter_all() {
                prop_assert!(c.validate().is_ok(), "invalid bytecode for\n{}", src);
            }
        }
    }

    /// Integer literals round-trip through tokenization.
    #[test]
    fn int_literals_round_trip(v in 0i64..1_000_000_000) {
        let toks = qoa_frontend::tokenize(&format!("x = {v}\n")).expect("lexes");
        let found = toks.iter().any(|t| {
            matches!(&t.tok, qoa_frontend::token::Tok::Int(i) if *i == v)
        });
        prop_assert!(found, "literal {} not tokenized", v);
    }
}
