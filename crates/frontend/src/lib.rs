//! Front end for Pyl, the Python-like guest language of the QOA stack.
//!
//! Pyl is an indentation-structured dynamic language covering the Python
//! subset the paper's benchmarks exercise: integers (with overflow
//! checking), floats, strings, lists, tuples, dicts, functions with default
//! arguments, classes with single inheritance, `for`/`while` with
//! `break`/`continue`, boolean short-circuiting, slices, tuple unpacking,
//! augmented assignment, and `global`.
//!
//! Compilation goes source → tokens → AST → a CPython-2.7-style stack
//! [`CodeObject`], which both the reference-counting interpreter
//! (`qoa-vm`) and the tracing JIT (`qoa-jit`) execute.
//!
//! Known simplifications relative to Python (each documented where it is
//! implemented): no closures over function locals (nested `def`s may only
//! use their own locals and globals), no `try`/`except`, chained
//! comparisons re-evaluate the middle operand, and `del` applies only to
//! subscripts.
//!
//! # Example
//!
//! ```
//! let code = qoa_frontend::compile("x = 1 + 2\n").expect("compiles");
//! assert_eq!(code.name, "<module>");
//! code.validate().expect("well-formed bytecode");
//! ```

pub mod ast;
pub mod bytecode;
pub mod compiler;
pub mod parser;
pub mod token;

pub use bytecode::{
    ccj_cmp, ccj_const, ccj_if_true, ccj_target, pack_const_cmp_jump, pack_pair, pair_hi, pair_lo,
    Cmp, CodeKind, CodeObject, Const, Instr, Opcode,
};
pub use compiler::{compile_module, CompileError};
pub use parser::{parse, ParseError};
pub use token::{tokenize, LexError};

use std::rc::Rc;

/// Everything that can go wrong turning source text into bytecode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrontendError {
    /// Tokenizer or parser error.
    Parse(ParseError),
    /// Semantic/compilation error.
    Compile(CompileError),
}

impl std::fmt::Display for FrontendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontendError::Parse(e) => write!(f, "syntax error: {e}"),
            FrontendError::Compile(e) => write!(f, "compile error: {e}"),
        }
    }
}

impl std::error::Error for FrontendError {}

impl From<ParseError> for FrontendError {
    fn from(e: ParseError) -> Self {
        FrontendError::Parse(e)
    }
}

impl From<CompileError> for FrontendError {
    fn from(e: CompileError) -> Self {
        FrontendError::Compile(e)
    }
}

/// Compiles Pyl source text to its module code object.
///
/// # Errors
///
/// Returns a [`FrontendError`] carrying the line and description of the
/// first problem found.
pub fn compile(source: &str) -> Result<Rc<CodeObject>, FrontendError> {
    let module = parser::parse(source)?;
    Ok(compiler::compile_module(&module)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_compile() {
        let code = compile("def f(x):\n    return x * 2\ny = f(21)\n").expect("compiles");
        code.validate().expect("valid");
        assert_eq!(code.kind, CodeKind::Module);
    }

    #[test]
    fn errors_carry_lines() {
        match compile("x = 1\ny = $\n") {
            Err(FrontendError::Parse(e)) => assert_eq!(e.line, 2),
            other => panic!("{other:?}"),
        }
        match compile("x = 1\nbreak\n") {
            Err(FrontendError::Compile(e)) => assert_eq!(e.line, 2),
            other => panic!("{other:?}"),
        }
    }
}
