//! Recursive-descent parser for the Pyl mini-language.
//!
//! Produces the [`Module`] AST from the token stream. The grammar is a
//! Python subset; notable simplifications (documented in the crate docs):
//! chained comparisons `a < b < c` are desugared to `a < b and b < c`
//! (re-evaluating `b`), and `elif` is lowered to a nested `if` in the
//! `else` branch.

use crate::ast::*;
use crate::token::{tokenize, Kw, LexError, Op, Tok, Token};
use std::fmt;

/// A syntax error with its line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description of the problem.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { message: e.message, line: e.line }
    }
}

/// Parses a complete module.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax problem.
pub fn parse(source: &str) -> Result<Module, ParseError> {
    let tokens = tokenize(source)?;
    Parser { toks: tokens, pos: 0 }.module()
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos.min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos.min(self.toks.len() - 1)].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].tok.clone();
        if self.pos < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { message: message.into(), line: self.line() }
    }

    fn eat_op(&mut self, op: Op) -> bool {
        if *self.peek() == Tok::Op(op) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_op(&mut self, op: Op) -> Result<(), ParseError> {
        if self.eat_op(op) {
            Ok(())
        } else {
            Err(self.err(format!("expected {op:?}, found {}", self.peek())))
        }
    }

    fn eat_kw(&mut self, kw: Kw) -> bool {
        if *self.peek() == Tok::Kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: Kw) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw:?}, found {}", self.peek())))
        }
    }

    fn expect_newline(&mut self) -> Result<(), ParseError> {
        match self.bump() {
            Tok::Newline | Tok::Eof => Ok(()),
            other => Err(self.err(format!("expected end of statement, found {other}"))),
        }
    }

    fn name(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Name(n) => Ok(n),
            other => Err(self.err(format!("expected name, found {other}"))),
        }
    }

    // ---- statements -----------------------------------------------------

    fn module(mut self) -> Result<Module, ParseError> {
        let mut body = Vec::new();
        while *self.peek() != Tok::Eof {
            body.push(self.statement()?);
        }
        Ok(Module { body })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_op(Op::Colon)?;
        if *self.peek() == Tok::Newline {
            self.bump();
            match self.bump() {
                Tok::Indent => {}
                other => return Err(self.err(format!("expected indented block, found {other}"))),
            }
            let mut body = Vec::new();
            while *self.peek() != Tok::Dedent {
                if *self.peek() == Tok::Eof {
                    return Err(self.err("unexpected end of input in block"));
                }
                body.push(self.statement()?);
            }
            self.bump(); // Dedent
            Ok(body)
        } else {
            // Inline suite: `if x: y = 1`
            let stmt = self.simple_statement()?;
            self.expect_newline()?;
            Ok(vec![stmt])
        }
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Kw(Kw::If) => self.if_statement(),
            Tok::Kw(Kw::While) => {
                self.bump();
                let cond = self.expression()?;
                let body = self.block()?;
                Ok(Stmt { kind: StmtKind::While { cond, body }, line })
            }
            Tok::Kw(Kw::For) => {
                self.bump();
                let target_expr = self.target_list()?;
                let target = self.to_target(target_expr)?;
                self.expect_kw(Kw::In)?;
                let iter = self.expression_list()?;
                let body = self.block()?;
                Ok(Stmt { kind: StmtKind::For { target, iter, body }, line })
            }
            Tok::Kw(Kw::Def) => {
                let d = self.func_def()?;
                Ok(Stmt { kind: StmtKind::FuncDef(d), line })
            }
            Tok::Kw(Kw::Class) => {
                self.bump();
                let name = self.name()?;
                let base = if self.eat_op(Op::LParen) {
                    if self.eat_op(Op::RParen) {
                        None
                    } else {
                        let b = self.name()?;
                        self.expect_op(Op::RParen)?;
                        Some(b)
                    }
                } else {
                    None
                };
                let body = self.block()?;
                Ok(Stmt { kind: StmtKind::ClassDef(ClassDef { name, base, body }), line })
            }
            _ => {
                let stmt = self.simple_statement()?;
                self.expect_newline()?;
                Ok(stmt)
            }
        }
    }

    fn if_statement(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        self.bump(); // if / elif
        let cond = self.expression()?;
        let then = self.block()?;
        let orelse = if *self.peek() == Tok::Kw(Kw::Elif) {
            vec![self.if_statement_elif()?]
        } else if self.eat_kw(Kw::Else) {
            self.block()?
        } else {
            Vec::new()
        };
        Ok(Stmt { kind: StmtKind::If { cond, then, orelse }, line })
    }

    fn if_statement_elif(&mut self) -> Result<Stmt, ParseError> {
        // `elif` parses exactly like `if`.
        self.if_statement()
    }

    fn func_def(&mut self) -> Result<FuncDef, ParseError> {
        self.expect_kw(Kw::Def)?;
        let name = self.name()?;
        self.expect_op(Op::LParen)?;
        let mut params = Vec::new();
        let mut defaults = Vec::new();
        while *self.peek() != Tok::Op(Op::RParen) {
            params.push(self.name()?);
            if self.eat_op(Op::Assign) {
                defaults.push(self.expression()?);
            } else if !defaults.is_empty() {
                return Err(self.err("non-default parameter after default parameter"));
            }
            if !self.eat_op(Op::Comma) {
                break;
            }
        }
        self.expect_op(Op::RParen)?;
        let body = self.block()?;
        Ok(FuncDef { name, params, defaults, body })
    }

    fn simple_statement(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        let kind = match self.peek().clone() {
            Tok::Kw(Kw::Pass) => {
                self.bump();
                StmtKind::Pass
            }
            Tok::Kw(Kw::Break) => {
                self.bump();
                StmtKind::Break
            }
            Tok::Kw(Kw::Continue) => {
                self.bump();
                StmtKind::Continue
            }
            Tok::Kw(Kw::Return) => {
                self.bump();
                if matches!(self.peek(), Tok::Newline | Tok::Eof) {
                    StmtKind::Return(None)
                } else {
                    StmtKind::Return(Some(self.expression_list()?))
                }
            }
            Tok::Kw(Kw::Global) => {
                self.bump();
                let mut names = vec![self.name()?];
                while self.eat_op(Op::Comma) {
                    names.push(self.name()?);
                }
                StmtKind::Global(names)
            }
            Tok::Kw(Kw::Del) => {
                self.bump();
                let e = self.expression()?;
                match e.kind {
                    ExprKind::Index(obj, idx) => StmtKind::DelIndex(*obj, *idx),
                    _ => return Err(self.err("del supports only subscript targets")),
                }
            }
            _ => {
                let first = self.expression_list()?;
                if self.eat_op(Op::Assign) {
                    let target = self.to_target(first)?;
                    let value = self.expression_list()?;
                    StmtKind::Assign(target, value)
                } else if let Some(op) = self.aug_op() {
                    let target = self.to_target(first)?;
                    let value = self.expression_list()?;
                    StmtKind::AugAssign(target, op, value)
                } else {
                    StmtKind::Expr(first)
                }
            }
        };
        Ok(Stmt { kind, line })
    }

    fn aug_op(&mut self) -> Option<BinOp> {
        let op = match self.peek() {
            Tok::Op(Op::PlusEq) => BinOp::Add,
            Tok::Op(Op::MinusEq) => BinOp::Sub,
            Tok::Op(Op::StarEq) => BinOp::Mul,
            Tok::Op(Op::SlashEq) => BinOp::Div,
            Tok::Op(Op::SlashSlashEq) => BinOp::FloorDiv,
            Tok::Op(Op::PercentEq) => BinOp::Mod,
            Tok::Op(Op::AmpEq) => BinOp::BitAnd,
            Tok::Op(Op::PipeEq) => BinOp::BitOr,
            Tok::Op(Op::CaretEq) => BinOp::BitXor,
            Tok::Op(Op::ShlEq) => BinOp::Shl,
            Tok::Op(Op::ShrEq) => BinOp::Shr,
            _ => return None,
        };
        self.bump();
        Some(op)
    }

    fn to_target(&self, e: Expr) -> Result<Target, ParseError> {
        match e.kind {
            ExprKind::Name(n) => Ok(Target::Name(n)),
            ExprKind::Index(obj, idx) => Ok(Target::Index(*obj, *idx)),
            ExprKind::Attr(obj, name) => Ok(Target::Attr(*obj, name)),
            ExprKind::Tuple(items) => {
                let targets: Result<Vec<_>, _> =
                    items.into_iter().map(|i| self.to_target(i)).collect();
                Ok(Target::Tuple(targets?))
            }
            _ => Err(ParseError { message: "invalid assignment target".into(), line: e.line }),
        }
    }

    // ---- expressions ----------------------------------------------------

    /// `a, b, c` — a comma-joined list becomes a tuple.
    fn expression_list(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        let first = self.expression()?;
        if *self.peek() != Tok::Op(Op::Comma) {
            return Ok(first);
        }
        let mut items = vec![first];
        while self.eat_op(Op::Comma) {
            if matches!(
                self.peek(),
                Tok::Newline | Tok::Eof | Tok::Op(Op::Assign) | Tok::Op(Op::RParen)
            ) {
                break;
            }
            items.push(self.expression()?);
        }
        Ok(Expr { kind: ExprKind::Tuple(items), line })
    }

    /// Like `expression_list` but for `for` targets: parses only postfix
    /// expressions so the `in` keyword is left for the loop header.
    fn target_list(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        let first = self.postfix()?;
        if *self.peek() != Tok::Op(Op::Comma) {
            return Ok(first);
        }
        let mut items = vec![first];
        while self.eat_op(Op::Comma) {
            if *self.peek() == Tok::Kw(Kw::In) {
                break;
            }
            items.push(self.postfix()?);
        }
        Ok(Expr { kind: ExprKind::Tuple(items), line })
    }

    fn expression(&mut self) -> Result<Expr, ParseError> {
        self.or_test()
    }

    fn or_test(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_test()?;
        while self.eat_kw(Kw::Or) {
            let line = lhs.line;
            let rhs = self.and_test()?;
            lhs = Expr { kind: ExprKind::Or(Box::new(lhs), Box::new(rhs)), line };
        }
        Ok(lhs)
    }

    fn and_test(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.not_test()?;
        while self.eat_kw(Kw::And) {
            let line = lhs.line;
            let rhs = self.not_test()?;
            lhs = Expr { kind: ExprKind::And(Box::new(lhs), Box::new(rhs)), line };
        }
        Ok(lhs)
    }

    fn not_test(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        if self.eat_kw(Kw::Not) {
            let e = self.not_test()?;
            Ok(Expr { kind: ExprKind::Unary(UnaryOp::Not, Box::new(e)), line })
        } else {
            self.comparison()
        }
    }

    fn cmp_op(&mut self) -> Option<CmpOp> {
        let op = match self.peek() {
            Tok::Op(Op::EqEq) => CmpOp::Eq,
            Tok::Op(Op::Ne) => CmpOp::Ne,
            Tok::Op(Op::Lt) => CmpOp::Lt,
            Tok::Op(Op::Le) => CmpOp::Le,
            Tok::Op(Op::Gt) => CmpOp::Gt,
            Tok::Op(Op::Ge) => CmpOp::Ge,
            Tok::Kw(Kw::In) => CmpOp::In,
            // `not in`
            Tok::Kw(Kw::Not)
                if self.toks.get(self.pos + 1).map(|t| &t.tok) == Some(&Tok::Kw(Kw::In)) =>
            {
                self.bump();
                CmpOp::NotIn
            }
            _ => return None,
        };
        self.bump();
        Some(op)
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.bit_or()?;
        let Some(op) = self.cmp_op() else { return Ok(lhs) };
        let line = lhs.line;
        let rhs = self.bit_or()?;
        let mut result = Expr {
            kind: ExprKind::Cmp(op, Box::new(lhs), Box::new(rhs.clone())),
            line,
        };
        // Chained comparison: desugar `a < b < c` into `a < b and b < c`.
        let mut prev = rhs;
        while let Some(op) = self.cmp_op() {
            let next = self.bit_or()?;
            let link = Expr {
                kind: ExprKind::Cmp(op, Box::new(prev.clone()), Box::new(next.clone())),
                line,
            };
            result = Expr { kind: ExprKind::And(Box::new(result), Box::new(link)), line };
            prev = next;
        }
        Ok(result)
    }

    fn bin_level(
        &mut self,
        next: fn(&mut Self) -> Result<Expr, ParseError>,
        table: &[(Op, BinOp)],
    ) -> Result<Expr, ParseError> {
        let mut lhs = next(self)?;
        'outer: loop {
            for &(tok_op, bin_op) in table {
                if *self.peek() == Tok::Op(tok_op) {
                    self.bump();
                    let rhs = next(self)?;
                    let line = lhs.line;
                    lhs = Expr {
                        kind: ExprKind::Bin(bin_op, Box::new(lhs), Box::new(rhs)),
                        line,
                    };
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn bit_or(&mut self) -> Result<Expr, ParseError> {
        self.bin_level(Self::bit_xor, &[(Op::Pipe, BinOp::BitOr)])
    }

    fn bit_xor(&mut self) -> Result<Expr, ParseError> {
        self.bin_level(Self::bit_and, &[(Op::Caret, BinOp::BitXor)])
    }

    fn bit_and(&mut self) -> Result<Expr, ParseError> {
        self.bin_level(Self::shift, &[(Op::Amp, BinOp::BitAnd)])
    }

    fn shift(&mut self) -> Result<Expr, ParseError> {
        self.bin_level(Self::arith, &[(Op::Shl, BinOp::Shl), (Op::Shr, BinOp::Shr)])
    }

    fn arith(&mut self) -> Result<Expr, ParseError> {
        self.bin_level(Self::term, &[(Op::Plus, BinOp::Add), (Op::Minus, BinOp::Sub)])
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        self.bin_level(
            Self::factor,
            &[
                (Op::Star, BinOp::Mul),
                (Op::Slash, BinOp::Div),
                (Op::SlashSlash, BinOp::FloorDiv),
                (Op::Percent, BinOp::Mod),
            ],
        )
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        if self.eat_op(Op::Minus) {
            let e = self.factor()?;
            // Constant-fold negative literals.
            return Ok(match e.kind {
                ExprKind::Int(v) => Expr { kind: ExprKind::Int(-v), line },
                ExprKind::Float(v) => Expr { kind: ExprKind::Float(-v), line },
                _ => Expr { kind: ExprKind::Unary(UnaryOp::Neg, Box::new(e)), line },
            });
        }
        if self.eat_op(Op::Tilde) {
            let e = self.factor()?;
            return Ok(Expr { kind: ExprKind::Unary(UnaryOp::Invert, Box::new(e)), line });
        }
        if self.eat_op(Op::Plus) {
            return self.factor();
        }
        self.power()
    }

    fn power(&mut self) -> Result<Expr, ParseError> {
        let base = self.postfix()?;
        if self.eat_op(Op::StarStar) {
            let line = base.line;
            let exp = self.factor()?;
            return Ok(Expr { kind: ExprKind::Bin(BinOp::Pow, Box::new(base), Box::new(exp)), line });
        }
        Ok(base)
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.atom()?;
        loop {
            let line = self.line();
            if self.eat_op(Op::LParen) {
                let mut args = Vec::new();
                while *self.peek() != Tok::Op(Op::RParen) {
                    args.push(self.expression()?);
                    if !self.eat_op(Op::Comma) {
                        break;
                    }
                }
                self.expect_op(Op::RParen)?;
                e = Expr { kind: ExprKind::Call { func: Box::new(e), args }, line };
            } else if self.eat_op(Op::LBracket) {
                // Subscript or slice.
                let lo = if *self.peek() == Tok::Op(Op::Colon) {
                    None
                } else {
                    Some(Box::new(self.expression()?))
                };
                if self.eat_op(Op::Colon) {
                    let hi = if *self.peek() == Tok::Op(Op::RBracket) {
                        None
                    } else {
                        Some(Box::new(self.expression()?))
                    };
                    self.expect_op(Op::RBracket)?;
                    e = Expr { kind: ExprKind::Slice { obj: Box::new(e), lo, hi }, line };
                } else {
                    self.expect_op(Op::RBracket)?;
                    let idx = lo.expect("non-slice subscript has an index");
                    e = Expr { kind: ExprKind::Index(Box::new(e), idx), line };
                }
            } else if self.eat_op(Op::Dot) {
                let name = self.name()?;
                e = Expr { kind: ExprKind::Attr(Box::new(e), name), line };
            } else {
                return Ok(e);
            }
        }
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        let kind = match self.bump() {
            Tok::Int(v) => ExprKind::Int(v),
            Tok::Float(v) => ExprKind::Float(v),
            Tok::Str(s) => ExprKind::Str(s),
            Tok::Kw(Kw::True) => ExprKind::Bool(true),
            Tok::Kw(Kw::False) => ExprKind::Bool(false),
            Tok::Kw(Kw::None) => ExprKind::None,
            Tok::Name(n) => ExprKind::Name(n),
            Tok::Op(Op::LParen) => {
                if self.eat_op(Op::RParen) {
                    ExprKind::Tuple(Vec::new())
                } else {
                    let inner = self.expression_list()?;
                    self.expect_op(Op::RParen)?;
                    return Ok(Expr { kind: inner.kind, line });
                }
            }
            Tok::Op(Op::LBracket) => {
                let mut items = Vec::new();
                while *self.peek() != Tok::Op(Op::RBracket) {
                    items.push(self.expression()?);
                    if !self.eat_op(Op::Comma) {
                        break;
                    }
                }
                self.expect_op(Op::RBracket)?;
                ExprKind::List(items)
            }
            Tok::Op(Op::LBrace) => {
                let mut items = Vec::new();
                while *self.peek() != Tok::Op(Op::RBrace) {
                    let k = self.expression()?;
                    self.expect_op(Op::Colon)?;
                    let v = self.expression()?;
                    items.push((k, v));
                    if !self.eat_op(Op::Comma) {
                        break;
                    }
                }
                self.expect_op(Op::RBrace)?;
                ExprKind::Dict(items)
            }
            other => return Err(self.err(format!("unexpected token {other}"))),
        };
        Ok(Expr { kind, line })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Module {
        parse(src).expect("parse")
    }

    fn first_stmt(src: &str) -> StmtKind {
        parse_ok(src).body.into_iter().next().expect("stmt").kind
    }

    #[test]
    fn assignment_and_arithmetic() {
        match first_stmt("x = 1 + 2 * 3\n") {
            StmtKind::Assign(Target::Name(n), e) => {
                assert_eq!(n, "x");
                // Precedence: 1 + (2 * 3)
                match e.kind {
                    ExprKind::Bin(BinOp::Add, _, rhs) => {
                        assert!(matches!(rhs.kind, ExprKind::Bin(BinOp::Mul, _, _)));
                    }
                    other => panic!("wrong shape: {other:?}"),
                }
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn operator_precedence_bitwise_below_comparison() {
        // `a & b == c` parses as `(a & b) == c`? No — Python binds == looser
        // than &; our grammar places comparison above bit-or, so
        // `a & b == c` is `(a & b) == c`.
        match first_stmt("r = a & b == c\n") {
            StmtKind::Assign(_, e) => {
                assert!(matches!(e.kind, ExprKind::Cmp(CmpOp::Eq, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn chained_comparison_desugars_to_and() {
        match first_stmt("r = a < b < c\n") {
            StmtKind::Assign(_, e) => {
                assert!(matches!(e.kind, ExprKind::And(_, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn if_elif_else_lowering() {
        let m = parse_ok("if a:\n    x = 1\nelif b:\n    x = 2\nelse:\n    x = 3\n");
        match &m.body[0].kind {
            StmtKind::If { orelse, .. } => {
                assert_eq!(orelse.len(), 1);
                match &orelse[0].kind {
                    StmtKind::If { orelse: inner_else, .. } => {
                        assert_eq!(inner_else.len(), 1);
                    }
                    other => panic!("elif should lower to nested if, got {other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn while_with_break_continue() {
        let m = parse_ok("while x > 0:\n    if x == 5:\n        break\n    continue\n");
        assert!(matches!(m.body[0].kind, StmtKind::While { .. }));
    }

    #[test]
    fn for_loop_with_tuple_target() {
        match first_stmt("for k, v in items:\n    pass\n") {
            StmtKind::For { target: Target::Tuple(ts), .. } => assert_eq!(ts.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn function_def_with_defaults() {
        match first_stmt("def f(a, b, c=3):\n    return a + b + c\n") {
            StmtKind::FuncDef(d) => {
                assert_eq!(d.params, vec!["a", "b", "c"]);
                assert_eq!(d.defaults.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn class_def_with_base() {
        match first_stmt("class Dog(Animal):\n    def bark(self):\n        return 1\n") {
            StmtKind::ClassDef(c) => {
                assert_eq!(c.name, "Dog");
                assert_eq!(c.base.as_deref(), Some("Animal"));
                assert_eq!(c.body.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn calls_attributes_and_subscripts_chain() {
        match first_stmt("y = obj.items[0].get(k)\n") {
            StmtKind::Assign(_, e) => {
                assert!(matches!(e.kind, ExprKind::Call { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn slices() {
        match first_stmt("y = xs[1:5]\n") {
            StmtKind::Assign(_, e) => {
                assert!(matches!(e.kind, ExprKind::Slice { lo: Some(_), hi: Some(_), .. }));
            }
            other => panic!("{other:?}"),
        }
        match first_stmt("y = xs[:n]\n") {
            StmtKind::Assign(_, e) => {
                assert!(matches!(e.kind, ExprKind::Slice { lo: None, hi: Some(_), .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn displays() {
        assert!(matches!(
            first_stmt("x = [1, 2, 3]\n"),
            StmtKind::Assign(_, Expr { kind: ExprKind::List(_), .. })
        ));
        assert!(matches!(
            first_stmt("x = {1: 'a', 2: 'b'}\n"),
            StmtKind::Assign(_, Expr { kind: ExprKind::Dict(_), .. })
        ));
        assert!(matches!(
            first_stmt("x = (1, 2)\n"),
            StmtKind::Assign(_, Expr { kind: ExprKind::Tuple(_), .. })
        ));
    }

    #[test]
    fn tuple_unpacking_assignment() {
        match first_stmt("a, b = b, a\n") {
            StmtKind::Assign(Target::Tuple(ts), e) => {
                assert_eq!(ts.len(), 2);
                assert!(matches!(e.kind, ExprKind::Tuple(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn augmented_assignment() {
        assert!(matches!(first_stmt("x += 1\n"), StmtKind::AugAssign(_, BinOp::Add, _)));
        assert!(matches!(first_stmt("x <<= 2\n"), StmtKind::AugAssign(_, BinOp::Shl, _)));
        assert!(matches!(
            first_stmt("xs[0] *= 3\n"),
            StmtKind::AugAssign(Target::Index(_, _), BinOp::Mul, _)
        ));
    }

    #[test]
    fn not_in_comparison() {
        match first_stmt("r = x not in d\n") {
            StmtKind::Assign(_, e) => assert!(matches!(e.kind, ExprKind::Cmp(CmpOp::NotIn, _, _))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn del_statement() {
        assert!(matches!(first_stmt("del d[k]\n"), StmtKind::DelIndex(_, _)));
        assert!(parse("del x\n").is_err());
    }

    #[test]
    fn global_statement() {
        match first_stmt("global a, b\n") {
            StmtKind::Global(names) => assert_eq!(names, vec!["a", "b"]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn syntax_errors_are_reported_with_lines() {
        let err = parse("x = 1\ny = (\n").expect_err("should fail");
        assert!(err.line >= 2, "line = {}", err.line);
        assert!(parse("def f(:\n    pass\n").is_err());
        assert!(parse("1 = x\n").is_err());
    }

    #[test]
    fn inline_suites() {
        let m = parse_ok("if x: y = 1\n");
        match &m.body[0].kind {
            StmtKind::If { then, .. } => assert_eq!(then.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn negative_literals_fold() {
        match first_stmt("x = -5\n") {
            StmtKind::Assign(_, e) => assert_eq!(e.kind, ExprKind::Int(-5)),
            other => panic!("{other:?}"),
        }
    }
}
