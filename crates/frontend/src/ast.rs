//! Abstract syntax tree for the Pyl mini-language.

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (true division)
    Div,
    /// `//` (floor division)
    FloorDiv,
    /// `%`
    Mod,
    /// `**`
    Pow,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `in`
    In,
    /// `not in`
    NotIn,
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `-`
    Neg,
    /// `not`
    Not,
    /// `~`
    Invert,
}

/// An expression, annotated with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Expression kind.
    pub kind: ExprKind,
    /// 1-based source line.
    pub line: u32,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `True` / `False`.
    Bool(bool),
    /// `None`.
    None,
    /// Name reference.
    Name(String),
    /// Binary arithmetic/bit operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Comparison (single; chains are desugared by the parser).
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Short-circuit `and`.
    And(Box<Expr>, Box<Expr>),
    /// Short-circuit `or`.
    Or(Box<Expr>, Box<Expr>),
    /// Function call.
    Call {
        /// Callee expression.
        func: Box<Expr>,
        /// Positional arguments.
        args: Vec<Expr>,
    },
    /// Attribute access `obj.name`.
    Attr(Box<Expr>, String),
    /// Subscript `obj[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// Slice `obj[lo:hi]` (either bound optional).
    Slice {
        /// The sliced object.
        obj: Box<Expr>,
        /// Lower bound.
        lo: Option<Box<Expr>>,
        /// Upper bound.
        hi: Option<Box<Expr>>,
    },
    /// List display `[a, b, c]`.
    List(Vec<Expr>),
    /// Tuple display `(a, b)` / bare `a, b`.
    Tuple(Vec<Expr>),
    /// Dict display `{k: v, ...}`.
    Dict(Vec<(Expr, Expr)>),
}

/// An assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// Simple name.
    Name(String),
    /// Subscript `obj[index] = ...`.
    Index(Expr, Expr),
    /// Attribute `obj.name = ...`.
    Attr(Expr, String),
    /// Tuple unpacking `a, b = ...`.
    Tuple(Vec<Target>),
}

/// A statement, annotated with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Statement kind.
    pub kind: StmtKind,
    /// 1-based source line.
    pub line: u32,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Expression statement (value discarded).
    Expr(Expr),
    /// Assignment `target = value`.
    Assign(Target, Expr),
    /// Augmented assignment `target op= value`.
    AugAssign(Target, BinOp, Expr),
    /// `if` / `elif` / `else` chain.
    If {
        /// Condition.
        cond: Expr,
        /// True branch.
        then: Vec<Stmt>,
        /// Else branch (possibly containing the lowered `elif`).
        orelse: Vec<Stmt>,
    },
    /// `while` loop.
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for target in iter` loop.
    For {
        /// Loop target.
        target: Target,
        /// Iterated expression.
        iter: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// `return` (with optional value).
    Return(Option<Expr>),
    /// `pass`.
    Pass,
    /// `global name, ...`.
    Global(Vec<String>),
    /// `del obj[index]`.
    DelIndex(Expr, Expr),
    /// Function definition.
    FuncDef(FuncDef),
    /// Class definition.
    ClassDef(ClassDef),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Default values for the trailing parameters.
    pub defaults: Vec<Expr>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A class definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDef {
    /// Class name.
    pub name: String,
    /// Single optional base-class name.
    pub base: Option<String>,
    /// Body statements (method `def`s and class-level assignments).
    pub body: Vec<Stmt>,
}

/// A parsed module: the top-level statement list.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Top-level statements.
    pub body: Vec<Stmt>,
}
