//! CPython-2.7-style bytecode.
//!
//! Code objects mirror CPython's: a flat instruction array (`co_code`), a
//! constant pool (`co_consts`), interned global/attribute names
//! (`co_names`), and local variable names (`co_varnames`, parameters
//! first). The opcode set is the classic stack-machine vocabulary the paper
//! describes in Fig. 1 — dispatch reads an instruction, operands come from
//! the value stack, and block-structured control flow (`SETUP_LOOP` /
//! `POP_BLOCK` / `BREAK_LOOP`) runs on a block stack, which is the *rich
//! control flow* overhead of Table II.

use std::rc::Rc;

/// One bytecode instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instr {
    /// Operation.
    pub op: Opcode,
    /// Operand (constant index, name index, jump target, or count).
    pub arg: u32,
    /// 1-based source line, for diagnostics.
    pub line: u32,
}

/// The opcode vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
#[allow(missing_docs)] // The variants mirror CPython opcode names.
pub enum Opcode {
    // Stack and constants
    LoadConst,
    PopTop,
    DupTop,
    DupTopTwo,
    RotTwo,
    RotThree,
    // Locals / globals / class namespaces
    LoadFast,
    StoreFast,
    LoadGlobal,
    StoreGlobal,
    LoadName,
    StoreName,
    // Attributes and items
    LoadAttr,
    StoreAttr,
    BinarySubscr,
    StoreSubscr,
    DeleteSubscr,
    // Binary operations
    BinaryAdd,
    BinarySubtract,
    BinaryMultiply,
    BinaryDivide,
    BinaryFloorDivide,
    BinaryModulo,
    BinaryPower,
    BinaryAnd,
    BinaryOr,
    BinaryXor,
    BinaryLshift,
    BinaryRshift,
    // Unary operations
    UnaryNegative,
    UnaryNot,
    UnaryInvert,
    // Comparison (arg = Cmp discriminant)
    CompareOp,
    // Control flow
    JumpAbsolute,
    PopJumpIfFalse,
    PopJumpIfTrue,
    JumpIfFalseOrPop,
    JumpIfTrueOrPop,
    SetupLoop,
    PopBlock,
    BreakLoop,
    GetIter,
    ForIter,
    // Displays
    BuildList,
    BuildTuple,
    BuildMap,
    BuildSlice,
    UnpackSequence,
    // Functions and classes
    CallFunction,
    ReturnValue,
    MakeFunction,
    BuildClass,
    Nop,
}

impl Opcode {
    /// Dense index of the opcode (for handler tables and statistics).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether `arg` is a bytecode offset (for disassembly).
    pub fn is_jump(self) -> bool {
        matches!(
            self,
            Opcode::JumpAbsolute
                | Opcode::PopJumpIfFalse
                | Opcode::PopJumpIfTrue
                | Opcode::JumpIfFalseOrPop
                | Opcode::JumpIfTrueOrPop
                | Opcode::SetupLoop
                | Opcode::ForIter
        )
    }
}

/// Comparison discriminants carried in [`Opcode::CompareOp`]'s arg.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
#[allow(missing_docs)]
pub enum Cmp {
    Eq = 0,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    In,
    NotIn,
}

impl Cmp {
    /// Decodes the arg of a `CompareOp`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range discriminant.
    pub fn from_arg(arg: u32) -> Cmp {
        match arg {
            0 => Cmp::Eq,
            1 => Cmp::Ne,
            2 => Cmp::Lt,
            3 => Cmp::Le,
            4 => Cmp::Gt,
            5 => Cmp::Ge,
            6 => Cmp::In,
            7 => Cmp::NotIn,
            other => panic!("bad comparison discriminant {other}"),
        }
    }
}

/// A compile-time constant.
#[derive(Debug, Clone)]
pub enum Const {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// `None`.
    None,
    /// A nested code object (function or class body).
    Code(Rc<CodeObject>),
}

impl PartialEq for Const {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Const::Int(a), Const::Int(b)) => a == b,
            (Const::Float(a), Const::Float(b)) => a.to_bits() == b.to_bits(),
            (Const::Str(a), Const::Str(b)) => a == b,
            (Const::Bool(a), Const::Bool(b)) => a == b,
            (Const::None, Const::None) => true,
            (Const::Code(a), Const::Code(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// What kind of scope a code object executes in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeKind {
    /// Module top level (names resolve in globals).
    Module,
    /// A function body (fast locals).
    Function,
    /// A class body (dict namespace, returned to `BuildClass`).
    ClassBody,
}

/// A compiled code object.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeObject {
    /// Name (function/class name, or `<module>`).
    pub name: String,
    /// Scope kind.
    pub kind: CodeKind,
    /// Number of parameters (a prefix of `varnames`).
    pub argcount: usize,
    /// Number of trailing parameters with defaults.
    pub num_defaults: usize,
    /// Local variable names; parameters first.
    pub varnames: Vec<String>,
    /// Interned global/attribute names.
    pub names: Vec<String>,
    /// Constant pool.
    pub consts: Vec<Const>,
    /// The instruction stream.
    pub code: Vec<Instr>,
}

impl CodeObject {
    /// Renders a readable disassembly (one instruction per line).
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, instr) in self.code.iter().enumerate() {
            let _ = write!(out, "{i:5} {:?} {}", instr.op, instr.arg);
            match instr.op {
                Opcode::LoadConst => {
                    let _ = write!(out, "    ({:?})", self.consts[instr.arg as usize]);
                }
                Opcode::LoadFast | Opcode::StoreFast => {
                    let _ = write!(out, "    ({})", self.varnames[instr.arg as usize]);
                }
                Opcode::LoadGlobal
                | Opcode::StoreGlobal
                | Opcode::LoadName
                | Opcode::StoreName
                | Opcode::LoadAttr
                | Opcode::StoreAttr
                | Opcode::BuildClass => {
                    let _ = write!(out, "    ({})", self.names[instr.arg as usize]);
                }
                Opcode::CompareOp => {
                    let _ = write!(out, "    ({:?})", Cmp::from_arg(instr.arg));
                }
                _ => {}
            }
            out.push('\n');
        }
        out
    }

    /// Validates internal consistency: every jump lands in range, every
    /// const/name/varname index is valid.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        for (i, instr) in self.code.iter().enumerate() {
            let arg = instr.arg as usize;
            let ok = match instr.op {
                _ if instr.op.is_jump() => arg <= self.code.len(),
                Opcode::LoadConst => arg < self.consts.len(),
                Opcode::LoadFast | Opcode::StoreFast => arg < self.varnames.len(),
                Opcode::LoadGlobal
                | Opcode::StoreGlobal
                | Opcode::LoadName
                | Opcode::StoreName
                | Opcode::LoadAttr
                | Opcode::StoreAttr
                | Opcode::BuildClass => arg < self.names.len(),
                Opcode::CompareOp => arg < 8,
                _ => true,
            };
            if !ok {
                return Err(format!("instr {i}: {:?} arg {arg} out of range", instr.op));
            }
        }
        // Nested code objects validate recursively.
        for c in &self.consts {
            if let Const::Code(code) = c {
                code.validate()?;
            }
        }
        Ok(())
    }

    /// Iterates over this code object and all nested ones.
    pub fn iter_all(self: &Rc<Self>) -> Vec<Rc<CodeObject>> {
        let mut out = vec![Rc::clone(self)];
        let mut i = 0;
        while i < out.len() {
            let current = Rc::clone(&out[i]);
            for c in &current.consts {
                if let Const::Code(code) = c {
                    out.push(Rc::clone(code));
                }
            }
            i += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_round_trip() {
        for (i, c) in [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge, Cmp::In, Cmp::NotIn]
            .iter()
            .enumerate()
        {
            assert_eq!(Cmp::from_arg(i as u32), *c);
        }
    }

    #[test]
    fn const_equality_handles_floats_and_nan() {
        assert_eq!(Const::Float(1.5), Const::Float(1.5));
        assert_eq!(Const::Float(f64::NAN), Const::Float(f64::NAN));
        assert_ne!(Const::Float(0.0), Const::Float(-0.0));
        assert_ne!(Const::Int(1), Const::Float(1.0));
    }

    #[test]
    fn validation_catches_bad_indices() {
        let code = CodeObject {
            name: "t".into(),
            kind: CodeKind::Function,
            argcount: 0,
            num_defaults: 0,
            varnames: vec![],
            names: vec![],
            consts: vec![],
            code: vec![Instr { op: Opcode::LoadConst, arg: 0, line: 1 }],
        };
        assert!(code.validate().is_err());
    }
}
