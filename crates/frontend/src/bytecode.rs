//! CPython-2.7-style bytecode.
//!
//! Code objects mirror CPython's: a flat instruction array (`co_code`), a
//! constant pool (`co_consts`), interned global/attribute names
//! (`co_names`), and local variable names (`co_varnames`, parameters
//! first). The opcode set is the classic stack-machine vocabulary the paper
//! describes in Fig. 1 — dispatch reads an instruction, operands come from
//! the value stack, and block-structured control flow (`SETUP_LOOP` /
//! `POP_BLOCK` / `BREAK_LOOP`) runs on a block stack, which is the *rich
//! control flow* overhead of Table II.

use std::rc::Rc;

/// One bytecode instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instr {
    /// Operation.
    pub op: Opcode,
    /// Operand (constant index, name index, jump target, or count).
    pub arg: u32,
    /// 1-based source line, for diagnostics.
    pub line: u32,
}

/// The opcode vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
#[allow(missing_docs)] // The variants mirror CPython opcode names.
pub enum Opcode {
    // Stack and constants
    LoadConst,
    PopTop,
    DupTop,
    DupTopTwo,
    RotTwo,
    RotThree,
    // Locals / globals / class namespaces
    LoadFast,
    StoreFast,
    LoadGlobal,
    StoreGlobal,
    LoadName,
    StoreName,
    // Attributes and items
    LoadAttr,
    StoreAttr,
    BinarySubscr,
    StoreSubscr,
    DeleteSubscr,
    // Binary operations
    BinaryAdd,
    BinarySubtract,
    BinaryMultiply,
    BinaryDivide,
    BinaryFloorDivide,
    BinaryModulo,
    BinaryPower,
    BinaryAnd,
    BinaryOr,
    BinaryXor,
    BinaryLshift,
    BinaryRshift,
    // Unary operations
    UnaryNegative,
    UnaryNot,
    UnaryInvert,
    // Comparison (arg = Cmp discriminant)
    CompareOp,
    // Control flow
    JumpAbsolute,
    PopJumpIfFalse,
    PopJumpIfTrue,
    JumpIfFalseOrPop,
    JumpIfTrueOrPop,
    SetupLoop,
    PopBlock,
    BreakLoop,
    GetIter,
    ForIter,
    // Displays
    BuildList,
    BuildTuple,
    BuildMap,
    BuildSlice,
    UnpackSequence,
    // Functions and classes
    CallFunction,
    ReturnValue,
    MakeFunction,
    BuildClass,
    // Fused superinstructions. Only the qoa-analysis optimizer emits
    // these (the compiler never does); each replaces a hot pair/triple
    // with one dispatch. Pair operands pack as `lo | hi << 16`
    // ([`pack_pair`]); `ConstCompareJump` packs target/cmp/direction/const
    // ([`pack_const_cmp_jump`]).
    LoadFastLoadFast,
    LoadFastLoadConst,
    AddFastFast,
    ConstCompareJump,
    Nop,
}

/// Packs two 16-bit operands into a fused-pair arg (`lo | hi << 16`).
/// `None` if either index needs more than 16 bits.
pub fn pack_pair(lo: u32, hi: u32) -> Option<u32> {
    if lo < (1 << 16) && hi < (1 << 16) { Some(lo | (hi << 16)) } else { None }
}

/// First operand of a fused-pair arg.
pub fn pair_lo(arg: u32) -> u32 {
    arg & 0xFFFF
}

/// Second operand of a fused-pair arg.
pub fn pair_hi(arg: u32) -> u32 {
    arg >> 16
}

/// Packs a `ConstCompareJump` arg: jump target in bits 0–15, comparison
/// discriminant in bits 16–18, jump-if-true flag in bit 19, constant
/// index in bits 20–31. `None` if the target needs more than 16 bits,
/// the comparison is not a valid [`Cmp`] discriminant, or the constant
/// index needs more than 12 bits.
pub fn pack_const_cmp_jump(target: u32, cmp: u32, jump_if_true: bool, konst: u32) -> Option<u32> {
    if target < (1 << 16) && cmp < 8 && konst < (1 << 12) {
        Some(target | (cmp << 16) | (u32::from(jump_if_true) << 19) | (konst << 20))
    } else {
        None
    }
}

/// Jump target of a `ConstCompareJump` arg.
pub fn ccj_target(arg: u32) -> u32 {
    arg & 0xFFFF
}

/// Comparison discriminant of a `ConstCompareJump` arg (always a valid
/// [`Cmp`] discriminant by construction of the 3-bit field).
pub fn ccj_cmp(arg: u32) -> u32 {
    (arg >> 16) & 0x7
}

/// Whether a `ConstCompareJump` jumps on a truthy comparison result.
pub fn ccj_if_true(arg: u32) -> bool {
    arg & (1 << 19) != 0
}

/// Constant index of a `ConstCompareJump` arg.
pub fn ccj_const(arg: u32) -> u32 {
    arg >> 20
}

impl Opcode {
    /// Number of distinct opcodes (dimension for dense per-opcode tables).
    pub const COUNT: usize = Self::ALL.len();

    /// Every opcode, in `index()` order.
    pub const ALL: [Opcode; 57] = [
        Opcode::LoadConst,
        Opcode::PopTop,
        Opcode::DupTop,
        Opcode::DupTopTwo,
        Opcode::RotTwo,
        Opcode::RotThree,
        Opcode::LoadFast,
        Opcode::StoreFast,
        Opcode::LoadGlobal,
        Opcode::StoreGlobal,
        Opcode::LoadName,
        Opcode::StoreName,
        Opcode::LoadAttr,
        Opcode::StoreAttr,
        Opcode::BinarySubscr,
        Opcode::StoreSubscr,
        Opcode::DeleteSubscr,
        Opcode::BinaryAdd,
        Opcode::BinarySubtract,
        Opcode::BinaryMultiply,
        Opcode::BinaryDivide,
        Opcode::BinaryFloorDivide,
        Opcode::BinaryModulo,
        Opcode::BinaryPower,
        Opcode::BinaryAnd,
        Opcode::BinaryOr,
        Opcode::BinaryXor,
        Opcode::BinaryLshift,
        Opcode::BinaryRshift,
        Opcode::UnaryNegative,
        Opcode::UnaryNot,
        Opcode::UnaryInvert,
        Opcode::CompareOp,
        Opcode::JumpAbsolute,
        Opcode::PopJumpIfFalse,
        Opcode::PopJumpIfTrue,
        Opcode::JumpIfFalseOrPop,
        Opcode::JumpIfTrueOrPop,
        Opcode::SetupLoop,
        Opcode::PopBlock,
        Opcode::BreakLoop,
        Opcode::GetIter,
        Opcode::ForIter,
        Opcode::BuildList,
        Opcode::BuildTuple,
        Opcode::BuildMap,
        Opcode::BuildSlice,
        Opcode::UnpackSequence,
        Opcode::CallFunction,
        Opcode::ReturnValue,
        Opcode::MakeFunction,
        Opcode::BuildClass,
        Opcode::LoadFastLoadFast,
        Opcode::LoadFastLoadConst,
        Opcode::AddFastFast,
        Opcode::ConstCompareJump,
        Opcode::Nop,
    ];

    /// Dense index of the opcode (for handler tables and statistics).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether `arg` encodes a jump target. For most jumps the arg *is*
    /// the target; `ConstCompareJump` packs it into the low 16 bits.
    /// Decode with [`Opcode::jump_target`], never with the raw arg.
    pub fn is_jump(self) -> bool {
        matches!(
            self,
            Opcode::JumpAbsolute
                | Opcode::PopJumpIfFalse
                | Opcode::PopJumpIfTrue
                | Opcode::JumpIfFalseOrPop
                | Opcode::JumpIfTrueOrPop
                | Opcode::SetupLoop
                | Opcode::ForIter
                | Opcode::ConstCompareJump
        )
    }

    /// Decodes the jump target carried in `arg`, or `None` for opcodes
    /// whose arg is not a bytecode offset. Total — safe on fuzzed args.
    pub fn jump_target(self, arg: u32) -> Option<u32> {
        match self {
            Opcode::ConstCompareJump => Some(ccj_target(arg)),
            _ if self.is_jump() => Some(arg),
            _ => None,
        }
    }

    /// Whether execution can continue at the next instruction after this
    /// one. `JumpAbsolute` always jumps, `BreakLoop` transfers to the
    /// enclosing block's exit, and `ReturnValue` leaves the frame.
    pub fn has_fallthrough(self) -> bool {
        !matches!(self, Opcode::JumpAbsolute | Opcode::BreakLoop | Opcode::ReturnValue)
    }

    /// `(pops, pushes)` on the operand stack along the fall-through edge.
    ///
    /// Pops happen before pushes, so the depth required on entry is
    /// `pops` and the depth after is `depth - pops + pushes`. Opcodes
    /// that only peek (`DupTop`, `ForIter`, ...) are expressed as
    /// re-pushing what they inspected, which encodes the entry
    /// requirement without changing the net effect.
    pub fn stack_io(self, arg: u32) -> (u64, u64) {
        let n = arg as u64;
        match self {
            Opcode::LoadConst
            | Opcode::LoadFast
            | Opcode::LoadGlobal
            | Opcode::LoadName => (0, 1),
            Opcode::PopTop
            | Opcode::StoreFast
            | Opcode::StoreGlobal
            | Opcode::StoreName => (1, 0),
            Opcode::DupTop => (1, 2),
            Opcode::DupTopTwo => (2, 4),
            Opcode::RotTwo => (2, 2),
            Opcode::RotThree => (3, 3),
            Opcode::LoadAttr
            | Opcode::GetIter
            | Opcode::UnaryNegative
            | Opcode::UnaryNot
            | Opcode::UnaryInvert => (1, 1),
            Opcode::StoreAttr | Opcode::DeleteSubscr => (2, 0),
            Opcode::BinarySubscr
            | Opcode::BuildSlice
            | Opcode::BuildClass
            | Opcode::CompareOp
            | Opcode::BinaryAdd
            | Opcode::BinarySubtract
            | Opcode::BinaryMultiply
            | Opcode::BinaryDivide
            | Opcode::BinaryFloorDivide
            | Opcode::BinaryModulo
            | Opcode::BinaryPower
            | Opcode::BinaryAnd
            | Opcode::BinaryOr
            | Opcode::BinaryXor
            | Opcode::BinaryLshift
            | Opcode::BinaryRshift => (2, 1),
            Opcode::StoreSubscr => (3, 0),
            Opcode::JumpAbsolute
            | Opcode::SetupLoop
            | Opcode::PopBlock
            | Opcode::BreakLoop
            | Opcode::Nop => (0, 0),
            Opcode::PopJumpIfFalse | Opcode::PopJumpIfTrue => (1, 0),
            // Falling through pops the tested value.
            Opcode::JumpIfFalseOrPop | Opcode::JumpIfTrueOrPop => (1, 0),
            // Loop continues: the iterator stays, the next value lands on top.
            Opcode::ForIter => (1, 2),
            Opcode::BuildList | Opcode::BuildTuple => (n, 1),
            Opcode::BuildMap => (2 * n, 1),
            Opcode::UnpackSequence => (1, n),
            Opcode::CallFunction | Opcode::MakeFunction => (n + 1, 1),
            Opcode::ReturnValue => (1, 0),
            Opcode::LoadFastLoadFast | Opcode::LoadFastLoadConst => (0, 2),
            Opcode::AddFastFast => (0, 1),
            // The fused LoadConst lands and is consumed internally; only
            // the pre-existing LHS is popped.
            Opcode::ConstCompareJump => (1, 0),
        }
    }

    /// `(pops, pushes)` along the taken-jump edge to `arg`, for the
    /// opcodes whose `arg` is a direct jump target. `None` for everything
    /// else — including `SetupLoop`, whose `arg` is the block *exit*
    /// reached via `BreakLoop` at the block's entry depth, and
    /// `BreakLoop` itself, whose target comes from the block stack.
    pub fn jump_io(self) -> Option<(u64, u64)> {
        match self {
            Opcode::JumpAbsolute => Some((0, 0)),
            Opcode::PopJumpIfFalse | Opcode::PopJumpIfTrue => Some((1, 0)),
            // Jumping keeps the tested value on the stack.
            Opcode::JumpIfFalseOrPop | Opcode::JumpIfTrueOrPop => Some((1, 1)),
            // Exhaustion pops the iterator.
            Opcode::ForIter => Some((1, 0)),
            Opcode::ConstCompareJump => Some((1, 0)),
            _ => None,
        }
    }
}

/// Comparison discriminants carried in [`Opcode::CompareOp`]'s arg.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
#[allow(missing_docs)]
pub enum Cmp {
    Eq = 0,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    In,
    NotIn,
}

impl Cmp {
    /// Decodes the arg of a `CompareOp`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range discriminant.
    pub fn from_arg(arg: u32) -> Cmp {
        match arg {
            0 => Cmp::Eq,
            1 => Cmp::Ne,
            2 => Cmp::Lt,
            3 => Cmp::Le,
            4 => Cmp::Gt,
            5 => Cmp::Ge,
            6 => Cmp::In,
            7 => Cmp::NotIn,
            other => panic!("bad comparison discriminant {other}"),
        }
    }
}

/// A compile-time constant.
#[derive(Debug, Clone)]
pub enum Const {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// `None`.
    None,
    /// A nested code object (function or class body).
    Code(Rc<CodeObject>),
}

impl PartialEq for Const {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Const::Int(a), Const::Int(b)) => a == b,
            (Const::Float(a), Const::Float(b)) => a.to_bits() == b.to_bits(),
            (Const::Str(a), Const::Str(b)) => a == b,
            (Const::Bool(a), Const::Bool(b)) => a == b,
            (Const::None, Const::None) => true,
            (Const::Code(a), Const::Code(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// What kind of scope a code object executes in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeKind {
    /// Module top level (names resolve in globals).
    Module,
    /// A function body (fast locals).
    Function,
    /// A class body (dict namespace, returned to `BuildClass`).
    ClassBody,
}

/// A compiled code object.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeObject {
    /// Name (function/class name, or `<module>`).
    pub name: String,
    /// Scope kind.
    pub kind: CodeKind,
    /// Number of parameters (a prefix of `varnames`).
    pub argcount: usize,
    /// Number of trailing parameters with defaults.
    pub num_defaults: usize,
    /// Local variable names; parameters first.
    pub varnames: Vec<String>,
    /// Interned global/attribute names.
    pub names: Vec<String>,
    /// Constant pool.
    pub consts: Vec<Const>,
    /// The instruction stream.
    pub code: Vec<Instr>,
    /// Declared operand-stack bound: the deepest the value stack can get
    /// while this code runs. Computed by the compiler (CPython's
    /// `co_stacksize`); the verifier re-derives it and checks it, and the
    /// VM preallocates frames with it.
    pub max_stack: usize,
}

impl CodeObject {
    /// Renders a readable disassembly (one instruction per line).
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, instr) in self.code.iter().enumerate() {
            let _ = write!(out, "{i:5} {:?} {}", instr.op, instr.arg);
            match instr.op {
                Opcode::LoadConst => {
                    let _ = write!(out, "    ({:?})", self.consts[instr.arg as usize]);
                }
                Opcode::LoadFast | Opcode::StoreFast => {
                    let _ = write!(out, "    ({})", self.varnames[instr.arg as usize]);
                }
                Opcode::LoadGlobal
                | Opcode::StoreGlobal
                | Opcode::LoadName
                | Opcode::StoreName
                | Opcode::LoadAttr
                | Opcode::StoreAttr
                | Opcode::BuildClass => {
                    let _ = write!(out, "    ({})", self.names[instr.arg as usize]);
                }
                Opcode::CompareOp => {
                    let _ = write!(out, "    ({:?})", Cmp::from_arg(instr.arg));
                }
                Opcode::LoadFastLoadFast | Opcode::AddFastFast => {
                    let _ = write!(
                        out,
                        "    ({}, {})",
                        self.varnames[pair_lo(instr.arg) as usize],
                        self.varnames[pair_hi(instr.arg) as usize]
                    );
                }
                Opcode::LoadFastLoadConst => {
                    let _ = write!(
                        out,
                        "    ({}, {:?})",
                        self.varnames[pair_lo(instr.arg) as usize],
                        self.consts[pair_hi(instr.arg) as usize]
                    );
                }
                Opcode::ConstCompareJump => {
                    let _ = write!(
                        out,
                        "    ({:?} {:?}, {} -> {})",
                        self.consts[ccj_const(instr.arg) as usize],
                        Cmp::from_arg(ccj_cmp(instr.arg)),
                        ccj_if_true(instr.arg),
                        ccj_target(instr.arg)
                    );
                }
                _ => {}
            }
            out.push('\n');
        }
        out
    }

    /// Validates internal consistency: every jump lands in range, every
    /// const/name/varname index is valid.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        for (i, instr) in self.code.iter().enumerate() {
            let arg = instr.arg as usize;
            let ok = match instr.op {
                Opcode::LoadFastLoadFast => {
                    (pair_lo(instr.arg) as usize) < self.varnames.len()
                        && (pair_hi(instr.arg) as usize) < self.varnames.len()
                }
                Opcode::LoadFastLoadConst => {
                    (pair_lo(instr.arg) as usize) < self.varnames.len()
                        && (pair_hi(instr.arg) as usize) < self.consts.len()
                }
                Opcode::AddFastFast => {
                    (pair_lo(instr.arg) as usize) < self.varnames.len()
                        && (pair_hi(instr.arg) as usize) < self.varnames.len()
                }
                Opcode::ConstCompareJump => {
                    (ccj_target(instr.arg) as usize) <= self.code.len()
                        && (ccj_const(instr.arg) as usize) < self.consts.len()
                }
                _ if instr.op.is_jump() => arg <= self.code.len(),
                Opcode::LoadConst => arg < self.consts.len(),
                Opcode::LoadFast | Opcode::StoreFast => arg < self.varnames.len(),
                Opcode::LoadGlobal
                | Opcode::StoreGlobal
                | Opcode::LoadName
                | Opcode::StoreName
                | Opcode::LoadAttr
                | Opcode::StoreAttr
                | Opcode::BuildClass => arg < self.names.len(),
                Opcode::CompareOp => arg < 8,
                _ => true,
            };
            if !ok {
                return Err(format!("instr {i}: {:?} arg {arg} out of range", instr.op));
            }
        }
        // Nested code objects validate recursively.
        for c in &self.consts {
            if let Const::Code(code) = c {
                code.validate()?;
            }
        }
        Ok(())
    }

    /// Computes the operand-stack high-water mark (CPython's
    /// `stackdepth()`): a worklist walk over the instruction graph
    /// propagating entry depths along fall-through and jump edges.
    /// `SetupLoop` additionally propagates its entry depth to the block
    /// exit, which is where `BreakLoop` resumes after truncating the
    /// stack — so the block stack itself never needs simulating here.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency: a jump outside
    /// the instruction array, or a path that pops more than it pushed.
    pub fn compute_max_stack(&self) -> Result<usize, String> {
        const DEPTH_LIMIT: u64 = 1 << 16;
        let len = self.code.len();
        // Deepest entry depth seen per instruction; re-propagate only when
        // it grows, so the walk terminates (depths are bounded by the
        // monotone max and error out if they go negative).
        let mut entry: Vec<Option<u64>> = vec![None; len];
        let mut work: Vec<(usize, u64)> = Vec::new();
        if len > 0 {
            work.push((0, 0));
        }
        let mut max = 0u64;
        while let Some((i, depth)) = work.pop() {
            if i >= len {
                return Err(format!("jump target {i} out of range (len {len})"));
            }
            if entry[i].is_some_and(|seen| seen >= depth) {
                continue;
            }
            entry[i] = Some(depth);
            let instr = self.code[i];
            let mut edge = |work: &mut Vec<(usize, u64)>,
                            target: usize,
                            pops: u64,
                            pushes: u64|
             -> Result<(), String> {
                if depth < pops {
                    return Err(format!(
                        "instr {i}: {:?} pops {pops} with stack depth {depth}",
                        instr.op
                    ));
                }
                let after = depth - pops + pushes;
                // A cycle with net-positive stack effect grows the depth
                // forever; no plausible program needs 2^16 operands.
                if after > DEPTH_LIMIT {
                    return Err(format!(
                        "instr {i}: stack depth {after} diverges (positive-effect cycle?)"
                    ));
                }
                max = max.max(after);
                work.push((target, after));
                Ok(())
            };
            if instr.op.has_fallthrough() {
                let (pops, pushes) = instr.op.stack_io(instr.arg);
                edge(&mut work, i + 1, pops, pushes)?;
            } else if instr.op == Opcode::ReturnValue {
                // Class bodies return their namespace dict implicitly;
                // their ReturnValue pops nothing.
                let pops = if self.kind == CodeKind::ClassBody { 0 } else { 1 };
                if depth < pops {
                    return Err(format!("instr {i}: ReturnValue on empty stack"));
                }
            }
            if let Some((pops, pushes)) = instr.op.jump_io() {
                let target = instr.op.jump_target(instr.arg).unwrap_or(instr.arg);
                edge(&mut work, target as usize, pops, pushes)?;
            }
            if instr.op == Opcode::SetupLoop {
                // Block exit resumes at this depth (BreakLoop truncates).
                edge(&mut work, instr.arg as usize, 0, 0)?;
            }
        }
        Ok(max as usize)
    }

    /// Iterates over this code object and all nested ones.
    pub fn iter_all(self: &Rc<Self>) -> Vec<Rc<CodeObject>> {
        let mut out = vec![Rc::clone(self)];
        let mut i = 0;
        while i < out.len() {
            let current = Rc::clone(&out[i]);
            for c in &current.consts {
                if let Const::Code(code) = c {
                    out.push(Rc::clone(code));
                }
            }
            i += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_round_trip() {
        for (i, c) in [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge, Cmp::In, Cmp::NotIn]
            .iter()
            .enumerate()
        {
            assert_eq!(Cmp::from_arg(i as u32), *c);
        }
    }

    #[test]
    fn const_equality_handles_floats_and_nan() {
        assert_eq!(Const::Float(1.5), Const::Float(1.5));
        assert_eq!(Const::Float(f64::NAN), Const::Float(f64::NAN));
        assert_ne!(Const::Float(0.0), Const::Float(-0.0));
        assert_ne!(Const::Int(1), Const::Float(1.0));
    }

    #[test]
    fn validation_catches_bad_indices() {
        let code = CodeObject {
            name: "t".into(),
            kind: CodeKind::Function,
            argcount: 0,
            num_defaults: 0,
            varnames: vec![],
            names: vec![],
            consts: vec![],
            code: vec![Instr { op: Opcode::LoadConst, arg: 0, line: 1 }],
            max_stack: 1,
        };
        assert!(code.validate().is_err());
    }

    fn raw(code: Vec<Instr>) -> CodeObject {
        CodeObject {
            name: "t".into(),
            kind: CodeKind::Function,
            argcount: 0,
            num_defaults: 0,
            varnames: vec![],
            names: vec![],
            consts: vec![Const::None],
            code,
            max_stack: 0,
        }
    }

    fn ins(op: Opcode, arg: u32) -> Instr {
        Instr { op, arg, line: 1 }
    }

    #[test]
    fn max_stack_straight_line() {
        let c = raw(vec![
            ins(Opcode::LoadConst, 0),
            ins(Opcode::LoadConst, 0),
            ins(Opcode::BinaryAdd, 0),
            ins(Opcode::ReturnValue, 0),
        ]);
        assert_eq!(c.compute_max_stack(), Ok(2));
    }

    #[test]
    fn max_stack_joins_take_deepest_path() {
        // Branch: one arm piles three operands, the other one.
        let c = raw(vec![
            ins(Opcode::LoadConst, 0),
            ins(Opcode::PopJumpIfFalse, 5),
            ins(Opcode::LoadConst, 0),
            ins(Opcode::LoadConst, 0),
            ins(Opcode::BinaryAdd, 0),
            ins(Opcode::LoadConst, 0),
            ins(Opcode::ReturnValue, 0),
        ]);
        // pc 5 is reached empty (jump) and with 1 operand (fallthrough);
        // the deepest transient is the two-operand add arm plus the
        // surviving value at pc 5.
        assert_eq!(c.compute_max_stack(), Ok(2));
    }

    #[test]
    fn max_stack_rejects_underflow_and_bad_jump() {
        let under = raw(vec![ins(Opcode::PopTop, 0), ins(Opcode::ReturnValue, 0)]);
        assert!(under.compute_max_stack().is_err());
        let wild = raw(vec![ins(Opcode::JumpAbsolute, 99)]);
        assert!(wild.compute_max_stack().is_err());
    }

    #[test]
    fn max_stack_terminates_on_positive_cycle() {
        let cycle = raw(vec![ins(Opcode::LoadConst, 0), ins(Opcode::JumpAbsolute, 0)]);
        assert!(cycle.compute_max_stack().is_err());
    }

    #[test]
    fn fused_arg_packing_round_trips() {
        let arg = pack_pair(7, 65_535).expect("fits");
        assert_eq!((pair_lo(arg), pair_hi(arg)), (7, 65_535));
        assert_eq!(pack_pair(1 << 16, 0), None);
        assert_eq!(pack_pair(0, 1 << 16), None);

        let arg = pack_const_cmp_jump(513, 5, true, 4_095).expect("fits");
        assert_eq!(ccj_target(arg), 513);
        assert_eq!(ccj_cmp(arg), 5);
        assert!(ccj_if_true(arg));
        assert_eq!(ccj_const(arg), 4_095);
        let arg = pack_const_cmp_jump(0, 0, false, 0).expect("fits");
        assert!(!ccj_if_true(arg));
        assert_eq!(pack_const_cmp_jump(1 << 16, 0, false, 0), None);
        assert_eq!(pack_const_cmp_jump(0, 8, false, 0), None);
        assert_eq!(pack_const_cmp_jump(0, 0, false, 1 << 12), None);
    }

    #[test]
    fn fused_jump_target_decodes_packed_arg() {
        let arg = pack_const_cmp_jump(42, 2, false, 3).expect("fits");
        assert_eq!(Opcode::ConstCompareJump.jump_target(arg), Some(42));
        assert_eq!(Opcode::JumpAbsolute.jump_target(7), Some(7));
        assert_eq!(Opcode::LoadConst.jump_target(7), None);
        assert!(Opcode::ConstCompareJump.is_jump());
    }

    #[test]
    fn opcode_all_matches_dense_indices() {
        assert_eq!(Opcode::ALL.len(), Opcode::COUNT);
        for (i, op) in Opcode::ALL.iter().enumerate() {
            assert_eq!(op.index(), i, "{op:?} out of order in Opcode::ALL");
        }
        // Nop is the last discriminant, so the table is exhaustive.
        assert_eq!(Opcode::Nop.index(), Opcode::COUNT - 1);
    }
}
