//! Bytecode compiler: AST → [`CodeObject`].
//!
//! Scoping follows Python's rule: a name assigned anywhere in a function
//! body is a fast local of that function unless declared `global`; all
//! other names resolve as globals at run time (the *name resolution*
//! overhead of Table II). Class bodies execute in a dictionary namespace
//! (`LoadName`/`StoreName`), exactly like CPython 2.7.

use crate::ast::*;
use crate::bytecode::{Cmp, CodeKind, CodeObject, Const, Instr, Opcode};
use std::collections::HashSet;
use std::fmt;
use std::rc::Rc;

/// A compilation error with its line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Description of the problem.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Compiles a parsed module into its top-level code object.
///
/// # Errors
///
/// Returns a [`CompileError`] on semantic problems (e.g. `break` outside a
/// loop or `return` at module level).
pub fn compile_module(module: &Module) -> Result<Rc<CodeObject>, CompileError> {
    let mut c = Compiler::new("<module>".into(), CodeKind::Module, &[]);
    c.stmts(&module.body)?;
    // Modules implicitly return None.
    let none = c.const_index(Const::None);
    c.emit(Opcode::LoadConst, none, 0);
    c.emit(Opcode::ReturnValue, 0, 0);
    Ok(Rc::new(c.finish()))
}

struct LoopCtx {
    start: usize,
    /// Indices of `BreakLoop` placeholders — patched by the VM's block
    /// stack at run time, kept here only for validation.
    _breaks: Vec<usize>,
}

struct Compiler {
    name: String,
    kind: CodeKind,
    argcount: usize,
    num_defaults: usize,
    varnames: Vec<String>,
    names: Vec<String>,
    consts: Vec<Const>,
    code: Vec<Instr>,
    locals: HashSet<String>,
    globals_declared: HashSet<String>,
    loops: Vec<LoopCtx>,
}

impl Compiler {
    fn new(name: String, kind: CodeKind, params: &[String]) -> Self {
        Compiler {
            name,
            kind,
            argcount: params.len(),
            num_defaults: 0,
            varnames: params.to_vec(),
            names: Vec::new(),
            consts: Vec::new(),
            code: Vec::new(),
            locals: params.iter().cloned().collect(),
            globals_declared: HashSet::new(),
            loops: Vec::new(),
        }
    }

    fn finish(self) -> CodeObject {
        let mut code = CodeObject {
            name: self.name,
            kind: self.kind,
            argcount: self.argcount,
            num_defaults: self.num_defaults,
            varnames: self.varnames,
            names: self.names,
            consts: self.consts,
            code: self.code,
            max_stack: 0,
        };
        // The walk only fails on malformed bytecode the compiler itself
        // would have to emit; fall back to a bound no program exceeds so
        // the verifier (which re-derives the depth) still gets its say.
        code.max_stack = code.compute_max_stack().unwrap_or(code.code.len() + 1);
        code
    }

    fn err(&self, line: u32, message: impl Into<String>) -> CompileError {
        CompileError { message: message.into(), line }
    }

    fn emit(&mut self, op: Opcode, arg: u32, line: u32) -> usize {
        self.code.push(Instr { op, arg, line });
        self.code.len() - 1
    }

    fn here(&self) -> usize {
        self.code.len()
    }

    fn patch(&mut self, at: usize, target: usize) {
        self.code[at].arg = target as u32;
    }

    fn const_index(&mut self, c: Const) -> u32 {
        if let Some(i) = self.consts.iter().position(|x| *x == c) {
            return i as u32;
        }
        self.consts.push(c);
        (self.consts.len() - 1) as u32
    }

    fn name_index(&mut self, name: &str) -> u32 {
        if let Some(i) = self.names.iter().position(|x| x == name) {
            return i as u32;
        }
        self.names.push(name.to_owned());
        (self.names.len() - 1) as u32
    }

    fn var_index(&mut self, name: &str) -> u32 {
        if let Some(i) = self.varnames.iter().position(|x| x == name) {
            return i as u32;
        }
        self.varnames.push(name.to_owned());
        (self.varnames.len() - 1) as u32
    }

    fn is_local(&self, name: &str) -> bool {
        self.kind == CodeKind::Function
            && self.locals.contains(name)
            && !self.globals_declared.contains(name)
    }

    // ---- scope analysis ---------------------------------------------------

    /// Collects names assigned in a body (Python's local-variable rule).
    fn collect_assigned(body: &[Stmt], out: &mut HashSet<String>, globals: &mut HashSet<String>) {
        for stmt in body {
            match &stmt.kind {
                StmtKind::Assign(t, _) | StmtKind::AugAssign(t, _, _) => {
                    Self::collect_target(t, out);
                }
                StmtKind::For { target, body, .. } => {
                    Self::collect_target(target, out);
                    Self::collect_assigned(body, out, globals);
                }
                StmtKind::If { then, orelse, .. } => {
                    Self::collect_assigned(then, out, globals);
                    Self::collect_assigned(orelse, out, globals);
                }
                StmtKind::While { body, .. } => Self::collect_assigned(body, out, globals),
                StmtKind::FuncDef(d) => {
                    out.insert(d.name.clone());
                }
                StmtKind::ClassDef(c) => {
                    out.insert(c.name.clone());
                }
                StmtKind::Global(names) => {
                    for n in names {
                        globals.insert(n.clone());
                    }
                }
                _ => {}
            }
        }
    }

    fn collect_target(t: &Target, out: &mut HashSet<String>) {
        match t {
            Target::Name(n) => {
                out.insert(n.clone());
            }
            Target::Tuple(ts) => {
                for t in ts {
                    Self::collect_target(t, out);
                }
            }
            Target::Index(..) | Target::Attr(..) => {}
        }
    }

    // ---- statements --------------------------------------------------------

    fn stmts(&mut self, body: &[Stmt]) -> Result<(), CompileError> {
        for s in body {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        let line = stmt.line;
        match &stmt.kind {
            StmtKind::Expr(e) => {
                self.expr(e)?;
                self.emit(Opcode::PopTop, 0, line);
            }
            StmtKind::Assign(target, value) => {
                self.expr(value)?;
                self.store(target, line)?;
            }
            StmtKind::AugAssign(target, op, value) => self.aug_assign(target, *op, value, line)?,
            StmtKind::If { cond, then, orelse } => {
                self.expr(cond)?;
                let jf = self.emit(Opcode::PopJumpIfFalse, 0, line);
                self.stmts(then)?;
                if orelse.is_empty() {
                    let end = self.here();
                    self.patch(jf, end);
                } else {
                    let jend = self.emit(Opcode::JumpAbsolute, 0, line);
                    let else_start = self.here();
                    self.patch(jf, else_start);
                    self.stmts(orelse)?;
                    let end = self.here();
                    self.patch(jend, end);
                }
            }
            StmtKind::While { cond, body } => {
                let setup = self.emit(Opcode::SetupLoop, 0, line);
                let start = self.here();
                self.expr(cond)?;
                let jf = self.emit(Opcode::PopJumpIfFalse, 0, line);
                self.loops.push(LoopCtx { start, _breaks: Vec::new() });
                self.stmts(body)?;
                self.loops.pop();
                self.emit(Opcode::JumpAbsolute, start as u32, line);
                let done = self.here();
                self.patch(jf, done);
                self.emit(Opcode::PopBlock, 0, line);
                let end = self.here();
                self.patch(setup, end);
            }
            StmtKind::For { target, iter, body } => {
                let setup = self.emit(Opcode::SetupLoop, 0, line);
                self.expr(iter)?;
                self.emit(Opcode::GetIter, 0, line);
                let start = self.here();
                let for_iter = self.emit(Opcode::ForIter, 0, line);
                self.store(target, line)?;
                self.loops.push(LoopCtx { start, _breaks: Vec::new() });
                self.stmts(body)?;
                self.loops.pop();
                self.emit(Opcode::JumpAbsolute, start as u32, line);
                let done = self.here();
                self.patch(for_iter, done);
                self.emit(Opcode::PopBlock, 0, line);
                let end = self.here();
                self.patch(setup, end);
            }
            StmtKind::Break => {
                if self.loops.is_empty() {
                    return Err(self.err(line, "break outside loop"));
                }
                self.emit(Opcode::BreakLoop, 0, line);
            }
            StmtKind::Continue => {
                let Some(ctx) = self.loops.last() else {
                    return Err(self.err(line, "continue outside loop"));
                };
                let start = ctx.start as u32;
                self.emit(Opcode::JumpAbsolute, start, line);
            }
            StmtKind::Return(value) => {
                if self.kind != CodeKind::Function {
                    return Err(self.err(line, "return outside function"));
                }
                match value {
                    Some(e) => self.expr(e)?,
                    None => {
                        let none = self.const_index(Const::None);
                        self.emit(Opcode::LoadConst, none, line);
                    }
                }
                self.emit(Opcode::ReturnValue, 0, line);
            }
            StmtKind::Pass => {}
            StmtKind::Global(_) => {
                // Handled during scope analysis; nothing at run time.
            }
            StmtKind::DelIndex(obj, idx) => {
                self.expr(obj)?;
                self.expr(idx)?;
                self.emit(Opcode::DeleteSubscr, 0, line);
            }
            StmtKind::FuncDef(d) => {
                self.func_def(d, line)?;
                self.store(&Target::Name(d.name.clone()), line)?;
            }
            StmtKind::ClassDef(c) => {
                self.class_def(c, line)?;
                self.store(&Target::Name(c.name.clone()), line)?;
            }
        }
        Ok(())
    }

    fn func_def(&mut self, d: &FuncDef, line: u32) -> Result<(), CompileError> {
        // Defaults are evaluated at definition time, pushed before the code.
        for def in &d.defaults {
            self.expr(def)?;
        }
        let mut inner = Compiler::new(d.name.clone(), CodeKind::Function, &d.params);
        inner.num_defaults = d.defaults.len();
        let mut assigned = HashSet::new();
        let mut globals = HashSet::new();
        Compiler::collect_assigned(&d.body, &mut assigned, &mut globals);
        inner.locals.extend(assigned.difference(&globals).cloned());
        inner.globals_declared = globals;
        // Pre-intern local names so indices are stable.
        let mut local_names: Vec<_> = inner
            .locals
            .iter()
            .filter(|n| !inner.varnames.contains(n))
            .cloned()
            .collect();
        local_names.sort();
        for n in local_names {
            inner.var_index(&n);
        }
        inner.stmts(&d.body)?;
        // Implicit `return None`.
        let none = inner.const_index(Const::None);
        inner.emit(Opcode::LoadConst, none, line);
        inner.emit(Opcode::ReturnValue, 0, line);
        let code = Rc::new(inner.finish());
        let ci = self.const_index(Const::Code(code));
        self.emit(Opcode::LoadConst, ci, line);
        self.emit(Opcode::MakeFunction, d.defaults.len() as u32, line);
        Ok(())
    }

    fn class_def(&mut self, c: &ClassDef, line: u32) -> Result<(), CompileError> {
        // Base class (or None) goes under the namespace dict.
        match &c.base {
            Some(base) => self.load_name(base, line),
            None => {
                let none = self.const_index(Const::None);
                self.emit(Opcode::LoadConst, none, line);
            }
        }
        // The class body runs as a function with a dict namespace; its
        // return value is that namespace.
        let mut inner = Compiler::new(c.name.clone(), CodeKind::ClassBody, &[]);
        inner.stmts(&c.body)?;
        inner.emit(Opcode::ReturnValue, 0, line); // VM returns the namespace
        let code = Rc::new(inner.finish());
        let ci = self.const_index(Const::Code(code));
        self.emit(Opcode::LoadConst, ci, line);
        self.emit(Opcode::MakeFunction, 0, line);
        self.emit(Opcode::CallFunction, 0, line);
        let ni = self.name_index(&c.name);
        self.emit(Opcode::BuildClass, ni, line);
        Ok(())
    }

    fn aug_assign(
        &mut self,
        target: &Target,
        op: BinOp,
        value: &Expr,
        line: u32,
    ) -> Result<(), CompileError> {
        let bin = Self::bin_opcode(op);
        match target {
            Target::Name(n) => {
                self.load_name(n, line);
                self.expr(value)?;
                self.emit(bin, 0, line);
                self.store_name(n, line);
            }
            Target::Index(obj, idx) => {
                self.expr(obj)?;
                self.expr(idx)?;
                self.emit(Opcode::DupTopTwo, 0, line);
                self.emit(Opcode::BinarySubscr, 0, line);
                self.expr(value)?;
                self.emit(bin, 0, line);
                self.emit(Opcode::RotThree, 0, line);
                self.emit(Opcode::StoreSubscr, 0, line);
            }
            Target::Attr(obj, name) => {
                self.expr(obj)?;
                self.emit(Opcode::DupTop, 0, line);
                let ni = self.name_index(name);
                self.emit(Opcode::LoadAttr, ni, line);
                self.expr(value)?;
                self.emit(bin, 0, line);
                self.emit(Opcode::RotTwo, 0, line);
                self.emit(Opcode::StoreAttr, ni, line);
            }
            Target::Tuple(_) => {
                return Err(self.err(line, "augmented assignment to tuple"));
            }
        }
        Ok(())
    }

    fn store(&mut self, target: &Target, line: u32) -> Result<(), CompileError> {
        match target {
            Target::Name(n) => self.store_name(n, line),
            Target::Index(obj, idx) => {
                // Stack: [value]; STORE_SUBSCR wants [value, obj, idx].
                self.expr(obj)?;
                self.expr(idx)?;
                self.emit(Opcode::StoreSubscr, 0, line);
            }
            Target::Attr(obj, name) => {
                self.expr(obj)?;
                let ni = self.name_index(name);
                self.emit(Opcode::StoreAttr, ni, line);
            }
            Target::Tuple(targets) => {
                self.emit(Opcode::UnpackSequence, targets.len() as u32, line);
                for t in targets {
                    self.store(t, line)?;
                }
            }
        }
        Ok(())
    }

    fn load_name(&mut self, name: &str, line: u32) {
        if self.is_local(name) {
            let vi = self.var_index(name);
            self.emit(Opcode::LoadFast, vi, line);
        } else if self.kind == CodeKind::ClassBody {
            let ni = self.name_index(name);
            self.emit(Opcode::LoadName, ni, line);
        } else {
            let ni = self.name_index(name);
            self.emit(Opcode::LoadGlobal, ni, line);
        }
    }

    fn store_name(&mut self, name: &str, line: u32) {
        if self.is_local(name) {
            let vi = self.var_index(name);
            self.emit(Opcode::StoreFast, vi, line);
        } else if self.kind == CodeKind::ClassBody {
            let ni = self.name_index(name);
            self.emit(Opcode::StoreName, ni, line);
        } else {
            let ni = self.name_index(name);
            self.emit(Opcode::StoreGlobal, ni, line);
        }
    }

    fn bin_opcode(op: BinOp) -> Opcode {
        match op {
            BinOp::Add => Opcode::BinaryAdd,
            BinOp::Sub => Opcode::BinarySubtract,
            BinOp::Mul => Opcode::BinaryMultiply,
            BinOp::Div => Opcode::BinaryDivide,
            BinOp::FloorDiv => Opcode::BinaryFloorDivide,
            BinOp::Mod => Opcode::BinaryModulo,
            BinOp::Pow => Opcode::BinaryPower,
            BinOp::BitAnd => Opcode::BinaryAnd,
            BinOp::BitOr => Opcode::BinaryOr,
            BinOp::BitXor => Opcode::BinaryXor,
            BinOp::Shl => Opcode::BinaryLshift,
            BinOp::Shr => Opcode::BinaryRshift,
        }
    }

    // ---- expressions --------------------------------------------------------

    fn expr(&mut self, e: &Expr) -> Result<(), CompileError> {
        let line = e.line;
        match &e.kind {
            ExprKind::Int(v) => {
                let ci = self.const_index(Const::Int(*v));
                self.emit(Opcode::LoadConst, ci, line);
            }
            ExprKind::Float(v) => {
                let ci = self.const_index(Const::Float(*v));
                self.emit(Opcode::LoadConst, ci, line);
            }
            ExprKind::Str(s) => {
                let ci = self.const_index(Const::Str(s.clone()));
                self.emit(Opcode::LoadConst, ci, line);
            }
            ExprKind::Bool(b) => {
                let ci = self.const_index(Const::Bool(*b));
                self.emit(Opcode::LoadConst, ci, line);
            }
            ExprKind::None => {
                let ci = self.const_index(Const::None);
                self.emit(Opcode::LoadConst, ci, line);
            }
            ExprKind::Name(n) => self.load_name(n, line),
            ExprKind::Bin(op, l, r) => {
                self.expr(l)?;
                self.expr(r)?;
                self.emit(Self::bin_opcode(*op), 0, line);
            }
            ExprKind::Cmp(op, l, r) => {
                self.expr(l)?;
                self.expr(r)?;
                let arg = match op {
                    CmpOp::Eq => Cmp::Eq,
                    CmpOp::Ne => Cmp::Ne,
                    CmpOp::Lt => Cmp::Lt,
                    CmpOp::Le => Cmp::Le,
                    CmpOp::Gt => Cmp::Gt,
                    CmpOp::Ge => Cmp::Ge,
                    CmpOp::In => Cmp::In,
                    CmpOp::NotIn => Cmp::NotIn,
                } as u32;
                self.emit(Opcode::CompareOp, arg, line);
            }
            ExprKind::Unary(op, inner) => {
                self.expr(inner)?;
                let opc = match op {
                    UnaryOp::Neg => Opcode::UnaryNegative,
                    UnaryOp::Not => Opcode::UnaryNot,
                    UnaryOp::Invert => Opcode::UnaryInvert,
                };
                self.emit(opc, 0, line);
            }
            ExprKind::And(l, r) => {
                self.expr(l)?;
                let j = self.emit(Opcode::JumpIfFalseOrPop, 0, line);
                self.expr(r)?;
                let end = self.here();
                self.patch(j, end);
            }
            ExprKind::Or(l, r) => {
                self.expr(l)?;
                let j = self.emit(Opcode::JumpIfTrueOrPop, 0, line);
                self.expr(r)?;
                let end = self.here();
                self.patch(j, end);
            }
            ExprKind::Call { func, args } => {
                self.expr(func)?;
                for a in args {
                    self.expr(a)?;
                }
                self.emit(Opcode::CallFunction, args.len() as u32, line);
            }
            ExprKind::Attr(obj, name) => {
                self.expr(obj)?;
                let ni = self.name_index(name);
                self.emit(Opcode::LoadAttr, ni, line);
            }
            ExprKind::Index(obj, idx) => {
                self.expr(obj)?;
                self.expr(idx)?;
                self.emit(Opcode::BinarySubscr, 0, line);
            }
            ExprKind::Slice { obj, lo, hi } => {
                self.expr(obj)?;
                match lo {
                    Some(e) => self.expr(e)?,
                    None => {
                        let ci = self.const_index(Const::None);
                        self.emit(Opcode::LoadConst, ci, line);
                    }
                }
                match hi {
                    Some(e) => self.expr(e)?,
                    None => {
                        let ci = self.const_index(Const::None);
                        self.emit(Opcode::LoadConst, ci, line);
                    }
                }
                self.emit(Opcode::BuildSlice, 2, line);
                self.emit(Opcode::BinarySubscr, 0, line);
            }
            ExprKind::List(items) => {
                for i in items {
                    self.expr(i)?;
                }
                self.emit(Opcode::BuildList, items.len() as u32, line);
            }
            ExprKind::Tuple(items) => {
                for i in items {
                    self.expr(i)?;
                }
                self.emit(Opcode::BuildTuple, items.len() as u32, line);
            }
            ExprKind::Dict(items) => {
                for (k, v) in items {
                    self.expr(k)?;
                    self.expr(v)?;
                }
                self.emit(Opcode::BuildMap, items.len() as u32, line);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compile(src: &str) -> Rc<CodeObject> {
        let m = parse(src).expect("parse");
        let code = compile_module(&m).expect("compile");
        code.validate().expect("validate");
        code
    }

    fn ops(code: &CodeObject) -> Vec<Opcode> {
        code.code.iter().map(|i| i.op).collect()
    }

    #[test]
    fn module_assignment_uses_globals() {
        let c = compile("x = 1\n");
        assert_eq!(
            ops(&c),
            vec![
                Opcode::LoadConst,
                Opcode::StoreGlobal,
                Opcode::LoadConst,
                Opcode::ReturnValue
            ]
        );
    }

    #[test]
    fn function_locals_are_fast() {
        let c = compile("def f(a):\n    b = a + 1\n    return b\n");
        let Const::Code(f) = &c.consts[0] else { panic!("expected code const") };
        assert_eq!(f.argcount, 1);
        assert!(ops(f).contains(&Opcode::LoadFast));
        assert!(ops(f).contains(&Opcode::StoreFast));
        assert!(!ops(f).contains(&Opcode::LoadGlobal));
    }

    #[test]
    fn global_declaration_overrides_local_rule() {
        let c = compile("def f():\n    global g\n    g = 1\n");
        let Const::Code(f) = &c.consts[0] else { panic!("expected code const") };
        assert!(ops(f).contains(&Opcode::StoreGlobal));
        assert!(!ops(f).contains(&Opcode::StoreFast));
    }

    #[test]
    fn while_loop_has_block_structure() {
        let c = compile("while x:\n    x = x - 1\n");
        let o = ops(&c);
        assert!(o.contains(&Opcode::SetupLoop));
        assert!(o.contains(&Opcode::PopBlock));
        assert!(o.contains(&Opcode::PopJumpIfFalse));
        assert!(o.contains(&Opcode::JumpAbsolute));
    }

    #[test]
    fn for_loop_uses_iterator_protocol() {
        let c = compile("for i in xs:\n    pass\n");
        let o = ops(&c);
        assert!(o.contains(&Opcode::GetIter));
        assert!(o.contains(&Opcode::ForIter));
    }

    #[test]
    fn break_outside_loop_rejected() {
        let m = parse("break\n").expect("parse");
        assert!(compile_module(&m).is_err());
    }

    #[test]
    fn return_at_module_level_rejected() {
        let m = parse("return 1\n").expect("parse");
        assert!(compile_module(&m).is_err());
    }

    #[test]
    fn consts_are_interned() {
        let c = compile("x = 5\ny = 5\nz = 5\n");
        let int_consts = c.consts.iter().filter(|c| matches!(c, Const::Int(5))).count();
        assert_eq!(int_consts, 1);
    }

    #[test]
    fn class_body_uses_name_ops_and_build_class() {
        let c = compile("class A:\n    x = 1\n    def m(self):\n        return 2\n");
        assert!(ops(&c).contains(&Opcode::BuildClass));
        let body = c
            .consts
            .iter()
            .find_map(|k| match k {
                Const::Code(code) if code.kind == CodeKind::ClassBody => Some(code),
                _ => None,
            })
            .expect("class body code");
        assert!(ops(body).contains(&Opcode::StoreName));
    }

    #[test]
    fn aug_assign_subscript_reuses_obj_and_index() {
        let c = compile("xs[0] += 1\n");
        let o = ops(&c);
        assert!(o.contains(&Opcode::DupTopTwo));
        assert!(o.contains(&Opcode::RotThree));
        assert!(o.contains(&Opcode::StoreSubscr));
    }

    #[test]
    fn tuple_unpack_compiles_to_unpack_sequence() {
        let c = compile("a, b = t\n");
        let o = ops(&c);
        let i = o.iter().position(|&x| x == Opcode::UnpackSequence).expect("unpack");
        assert_eq!(c.code[i].arg, 2);
    }

    #[test]
    fn and_or_shortcircuit_jumps() {
        let c = compile("r = a and b or c\n");
        let o = ops(&c);
        assert!(o.contains(&Opcode::JumpIfFalseOrPop));
        assert!(o.contains(&Opcode::JumpIfTrueOrPop));
    }

    #[test]
    fn defaults_are_pushed_before_make_function() {
        let c = compile("def f(a, b=2):\n    return a\n");
        let o = ops(&c);
        let mf = o.iter().position(|&x| x == Opcode::MakeFunction).expect("mf");
        assert_eq!(c.code[mf].arg, 1);
        assert_eq!(c.code[mf - 1].op, Opcode::LoadConst); // the code object
    }

    #[test]
    fn slice_compiles_to_build_slice() {
        let c = compile("y = xs[1:3]\n");
        let o = ops(&c);
        assert!(o.contains(&Opcode::BuildSlice));
    }

    #[test]
    fn nested_functions_compile() {
        let c = compile("def outer():\n    def inner():\n        return 1\n    return inner()\n");
        let Const::Code(outer) = &c.consts[0] else { panic!("outer code") };
        assert!(outer.consts.iter().any(|k| matches!(k, Const::Code(_))));
    }

    #[test]
    fn disassembly_is_readable() {
        let c = compile("x = 1 + 2\n");
        let d = c.disassemble();
        assert!(d.contains("LoadConst"));
        assert!(d.contains("StoreGlobal"));
    }

    #[test]
    fn all_jumps_validated_in_larger_program() {
        let src = "
def fib(n):
    if n < 2:
        return n
    a = 0
    b = 1
    i = 2
    while i <= n:
        a, b = b, a + b
        i += 1
    return b

total = 0
for k in range(10):
    if k % 2 == 0:
        total += fib(k)
    else:
        total -= 1
";
        let c = compile(src);
        for code in c.iter_all() {
            code.validate().expect("validate all");
        }
    }
}
