//! Lexical analysis for the Pyl mini-language.
//!
//! Pyl is an indentation-structured, Python-like surface syntax. The lexer
//! produces a flat token stream in which block structure is made explicit
//! through [`Tok::Indent`] / [`Tok::Dedent`] tokens, exactly as CPython's
//! tokenizer does. Blank lines and `#` comments are skipped; newlines inside
//! brackets are implicit continuations.

use std::fmt;

/// A token with its source line (1-based).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes removed, escapes resolved).
    Str(String),
    /// Identifier or non-keyword name.
    Name(String),
    /// Keyword.
    Kw(Kw),
    /// Punctuation or operator.
    Op(Op),
    /// Logical end of statement.
    Newline,
    /// Increase of indentation depth.
    Indent,
    /// Decrease of indentation depth.
    Dedent,
    /// End of input.
    Eof,
}

/// Keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kw {
    Def,
    Class,
    If,
    Elif,
    Else,
    While,
    For,
    In,
    Break,
    Continue,
    Return,
    Pass,
    And,
    Or,
    Not,
    True,
    False,
    None,
    Global,
    Del,
}

impl Kw {
    fn from_str(s: &str) -> Option<Kw> {
        Some(match s {
            "def" => Kw::Def,
            "class" => Kw::Class,
            "if" => Kw::If,
            "elif" => Kw::Elif,
            "else" => Kw::Else,
            "while" => Kw::While,
            "for" => Kw::For,
            "in" => Kw::In,
            "break" => Kw::Break,
            "continue" => Kw::Continue,
            "return" => Kw::Return,
            "pass" => Kw::Pass,
            "and" => Kw::And,
            "or" => Kw::Or,
            "not" => Kw::Not,
            "True" => Kw::True,
            "False" => Kw::False,
            "None" => Kw::None,
            "global" => Kw::Global,
            "del" => Kw::Del,
            _ => return None,
        })
    }
}

/// Operators and punctuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    Plus,
    Minus,
    Star,
    StarStar,
    Slash,
    SlashSlash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    Assign,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    SlashSlashEq,
    PercentEq,
    AmpEq,
    PipeEq,
    CaretEq,
    ShlEq,
    ShrEq,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Colon,
    Dot,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Name(n) => write!(f, "{n}"),
            Tok::Kw(k) => write!(f, "{k:?}"),
            Tok::Op(o) => write!(f, "{o:?}"),
            Tok::Newline => write!(f, "NEWLINE"),
            Tok::Indent => write!(f, "INDENT"),
            Tok::Dedent => write!(f, "DEDENT"),
            Tok::Eof => write!(f, "EOF"),
        }
    }
}

/// A lexical error with its line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Description of the problem.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `source` into a flat stream ending with [`Tok::Eof`].
///
/// # Errors
///
/// Returns a [`LexError`] on malformed numbers, unterminated strings,
/// inconsistent dedents, or unexpected characters.
pub fn tokenize(source: &str) -> Result<Vec<Token>, LexError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    indents: Vec<usize>,
    brackets: u32,
    out: Vec<Token>,
    line_start: bool,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            indents: vec![0],
            brackets: 0,
            out: Vec::new(),
            line_start: true,
        }
    }

    fn err(&self, message: impl Into<String>) -> LexError {
        LexError { message: message.into(), line: self.line }
    }

    fn peek(&self) -> u8 {
        self.src.get(self.pos).copied().unwrap_or(0)
    }

    fn peek2(&self) -> u8 {
        self.src.get(self.pos + 1).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        c
    }

    fn push(&mut self, tok: Tok) {
        self.out.push(Token { tok, line: self.line });
    }

    fn run(mut self) -> Result<Vec<Token>, LexError> {
        while self.pos < self.src.len() {
            if self.line_start && self.brackets == 0 {
                self.handle_indent()?;
                if self.pos >= self.src.len() {
                    break;
                }
            }
            let c = self.peek();
            match c {
                b'\n' => {
                    self.bump();
                    if self.brackets == 0 {
                        // Suppress empty statements.
                        if !matches!(
                            self.out.last().map(|t| &t.tok),
                            None | Some(Tok::Newline) | Some(Tok::Indent) | Some(Tok::Dedent)
                        ) {
                            self.push(Tok::Newline);
                        }
                        self.line_start = true;
                    }
                    self.line += 1;
                }
                b' ' | b'\t' | b'\r' => {
                    self.bump();
                }
                b'#' => {
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.bump();
                    }
                }
                b'0'..=b'9' => self.number()?,
                b'"' | b'\'' => self.string()?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.name(),
                b'\\' if self.peek2() == b'\n' => {
                    // Explicit line continuation.
                    self.bump();
                    self.bump();
                    self.line += 1;
                }
                _ => self.operator()?,
            }
        }
        // Final newline + dedents.
        if !matches!(
            self.out.last().map(|t| &t.tok),
            None | Some(Tok::Newline) | Some(Tok::Indent) | Some(Tok::Dedent)
        ) {
            self.push(Tok::Newline);
        }
        while self.indents.len() > 1 {
            self.indents.pop();
            self.push(Tok::Dedent);
        }
        self.push(Tok::Eof);
        Ok(self.out)
    }

    fn handle_indent(&mut self) -> Result<(), LexError> {
        loop {
            // Measure leading whitespace of this line.
            let mut width = 0usize;
            loop {
                match self.peek() {
                    b' ' => {
                        width += 1;
                        self.bump();
                    }
                    b'\t' => {
                        width += 8 - width % 8;
                        self.bump();
                    }
                    _ => break,
                }
            }
            match self.peek() {
                // Blank or comment-only line: consume and re-measure.
                b'\n' => {
                    self.bump();
                    self.line += 1;
                    continue;
                }
                b'#' => {
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.bump();
                    }
                    continue;
                }
                0 => {
                    self.line_start = false;
                    return Ok(());
                }
                _ => {}
            }
            let current = *self.indents.last().expect("indent stack never empty");
            if width > current {
                self.indents.push(width);
                self.push(Tok::Indent);
            } else if width < current {
                while *self.indents.last().expect("indent stack never empty") > width {
                    self.indents.pop();
                    self.push(Tok::Dedent);
                }
                if *self.indents.last().expect("indent stack never empty") != width {
                    return Err(self.err("inconsistent dedent"));
                }
            }
            self.line_start = false;
            return Ok(());
        }
    }

    fn number(&mut self) -> Result<(), LexError> {
        let start = self.pos;
        // Hex literal.
        if self.peek() == b'0' && (self.peek2() == b'x' || self.peek2() == b'X') {
            self.bump();
            self.bump();
            while self.peek().is_ascii_hexdigit() {
                self.bump();
            }
            let text = std::str::from_utf8(&self.src[start + 2..self.pos]).expect("ascii");
            let v = i64::from_str_radix(text, 16)
                .map_err(|_| self.err("hex literal out of range"))?;
            self.push(Tok::Int(v));
            return Ok(());
        }
        let mut is_float = false;
        while self.peek().is_ascii_digit() {
            self.bump();
        }
        if self.peek() == b'.' && self.peek2().is_ascii_digit() {
            is_float = true;
            self.bump();
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        if self.peek() == b'e' || self.peek() == b'E' {
            let save = self.pos;
            self.bump();
            if self.peek() == b'+' || self.peek() == b'-' {
                self.bump();
            }
            if self.peek().is_ascii_digit() {
                is_float = true;
                while self.peek().is_ascii_digit() {
                    self.bump();
                }
            } else {
                self.pos = save;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
        if is_float {
            let v: f64 = text.parse().map_err(|_| self.err("bad float literal"))?;
            self.push(Tok::Float(v));
        } else {
            let v: i64 = text.parse().map_err(|_| self.err("integer literal out of range"))?;
            self.push(Tok::Int(v));
        }
        Ok(())
    }

    fn string(&mut self) -> Result<(), LexError> {
        let quote = self.bump();
        let mut s = String::new();
        loop {
            if self.pos >= self.src.len() {
                return Err(self.err("unterminated string"));
            }
            let c = self.bump();
            if c == quote {
                break;
            }
            if c == b'\n' {
                return Err(self.err("newline in string"));
            }
            if c == b'\\' {
                let esc = self.bump();
                let resolved = match esc {
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    b'\\' => '\\',
                    b'\'' => '\'',
                    b'"' => '"',
                    b'0' => '\0',
                    other => {
                        s.push('\\');
                        other as char
                    }
                };
                s.push(resolved);
            } else {
                s.push(c as char);
            }
        }
        self.push(Tok::Str(s));
        Ok(())
    }

    fn name(&mut self) {
        let start = self.pos;
        while matches!(self.peek(), b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
        match Kw::from_str(text) {
            Some(kw) => self.push(Tok::Kw(kw)),
            None => self.push(Tok::Name(text.to_owned())),
        }
    }

    fn operator(&mut self) -> Result<(), LexError> {
        use Op::*;
        let c = self.bump();
        let next = self.peek();
        let op = match (c, next) {
            (b'*', b'*') => {
                self.bump();
                StarStar
            }
            (b'/', b'/') => {
                self.bump();
                if self.peek() == b'=' {
                    self.bump();
                    SlashSlashEq
                } else {
                    SlashSlash
                }
            }
            (b'<', b'<') => {
                self.bump();
                if self.peek() == b'=' {
                    self.bump();
                    ShlEq
                } else {
                    Shl
                }
            }
            (b'>', b'>') => {
                self.bump();
                if self.peek() == b'=' {
                    self.bump();
                    ShrEq
                } else {
                    Shr
                }
            }
            (b'<', b'=') => {
                self.bump();
                Le
            }
            (b'>', b'=') => {
                self.bump();
                Ge
            }
            (b'=', b'=') => {
                self.bump();
                EqEq
            }
            (b'!', b'=') => {
                self.bump();
                Ne
            }
            (b'+', b'=') => {
                self.bump();
                PlusEq
            }
            (b'-', b'=') => {
                self.bump();
                MinusEq
            }
            (b'*', b'=') => {
                self.bump();
                StarEq
            }
            (b'/', b'=') => {
                self.bump();
                SlashEq
            }
            (b'%', b'=') => {
                self.bump();
                PercentEq
            }
            (b'&', b'=') => {
                self.bump();
                AmpEq
            }
            (b'|', b'=') => {
                self.bump();
                PipeEq
            }
            (b'^', b'=') => {
                self.bump();
                CaretEq
            }
            (b'+', _) => Plus,
            (b'-', _) => Minus,
            (b'*', _) => Star,
            (b'/', _) => Slash,
            (b'%', _) => Percent,
            (b'&', _) => Amp,
            (b'|', _) => Pipe,
            (b'^', _) => Caret,
            (b'~', _) => Tilde,
            (b'<', _) => Lt,
            (b'>', _) => Gt,
            (b'=', _) => Assign,
            (b'(', _) => {
                self.brackets += 1;
                LParen
            }
            (b')', _) => {
                self.brackets = self.brackets.saturating_sub(1);
                RParen
            }
            (b'[', _) => {
                self.brackets += 1;
                LBracket
            }
            (b']', _) => {
                self.brackets = self.brackets.saturating_sub(1);
                RBracket
            }
            (b'{', _) => {
                self.brackets += 1;
                LBrace
            }
            (b'}', _) => {
                self.brackets = self.brackets.saturating_sub(1);
                RBrace
            }
            (b',', _) => Comma,
            (b':', _) => Colon,
            (b'.', _) => Dot,
            (other, _) => {
                return Err(self.err(format!("unexpected character {:?}", other as char)))
            }
        };
        self.push(Tok::Op(op));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src).expect("lex").into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn simple_expression() {
        assert_eq!(
            toks("x = 1 + 2\n"),
            vec![
                Tok::Name("x".into()),
                Tok::Op(Op::Assign),
                Tok::Int(1),
                Tok::Op(Op::Plus),
                Tok::Int(2),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn indentation_blocks() {
        let t = toks("if x:\n    y = 1\nz = 2\n");
        assert!(t.contains(&Tok::Indent));
        assert!(t.contains(&Tok::Dedent));
        let i = t.iter().position(|t| *t == Tok::Indent).expect("indent");
        let d = t.iter().position(|t| *t == Tok::Dedent).expect("dedent");
        assert!(i < d);
    }

    #[test]
    fn nested_dedents_close_all_levels() {
        let t = toks("if a:\n  if b:\n    c = 1\n");
        let dedents = t.iter().filter(|t| **t == Tok::Dedent).count();
        assert_eq!(dedents, 2);
    }

    #[test]
    fn blank_lines_and_comments_ignored() {
        let t = toks("x = 1\n\n# comment\n   # indented comment\ny = 2\n");
        let newlines = t.iter().filter(|t| **t == Tok::Newline).count();
        assert_eq!(newlines, 2);
        assert!(!t.contains(&Tok::Indent));
    }

    #[test]
    fn brackets_suppress_newlines() {
        let t = toks("x = [1,\n     2,\n     3]\n");
        let newlines = t.iter().filter(|t| **t == Tok::Newline).count();
        assert_eq!(newlines, 1);
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42\n")[0], Tok::Int(42));
        assert_eq!(toks("3.25\n")[0], Tok::Float(3.25));
        assert_eq!(toks("1e3\n")[0], Tok::Float(1000.0));
        assert_eq!(toks("0xff\n")[0], Tok::Int(255));
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(toks("'a\\nb'\n")[0], Tok::Str("a\nb".into()));
        assert_eq!(toks("\"hi\"\n")[0], Tok::Str("hi".into()));
    }

    #[test]
    fn keywords_vs_names() {
        assert_eq!(toks("while\n")[0], Tok::Kw(Kw::While));
        assert_eq!(toks("whiles\n")[0], Tok::Name("whiles".into()));
        assert_eq!(toks("True\n")[0], Tok::Kw(Kw::True));
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(toks("a // b\n")[1], Tok::Op(Op::SlashSlash));
        assert_eq!(toks("a ** b\n")[1], Tok::Op(Op::StarStar));
        assert_eq!(toks("a <= b\n")[1], Tok::Op(Op::Le));
        assert_eq!(toks("a != b\n")[1], Tok::Op(Op::Ne));
        assert_eq!(toks("a <<= b\n")[1], Tok::Op(Op::ShlEq));
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated\n").is_err());
        assert!(tokenize("x = $\n").is_err());
        assert!(tokenize("if a:\n   b = 1\n  c = 2\n").is_err(), "inconsistent dedent");
    }
}
