//! Differential property tests: for randomly generated branchy loop
//! programs, the tracing JIT must compute exactly what the plain
//! interpreter computes — across guard failures, bridges and deopts.

use proptest::prelude::*;
use qoa_jit::JitConfig;
use qoa_model::CountingSink;

/// A small randomly-shaped loop body: arithmetic on an accumulator with
/// data-dependent branches (the adversarial case for a tracing JIT).
fn random_program(
    iters: u32,
    branch_mod: i64,
    then_add: i64,
    else_mul_mod: i64,
    second_branch: bool,
) -> String {
    let mut p = format!("total = 0\nfor i in range({iters}):\n");
    p.push_str(&format!("    if i % {branch_mod} == 0:\n"));
    p.push_str(&format!("        total = total + {then_add}\n"));
    p.push_str("    else:\n");
    p.push_str(&format!(
        "        total = total + (i * 3) % {else_mul_mod} + 1\n"
    ));
    if second_branch {
        p.push_str("    if i % 7 == 3:\n        total = total - 1\n");
    }
    p
}

fn model(
    iters: u32,
    branch_mod: i64,
    then_add: i64,
    else_mul_mod: i64,
    second_branch: bool,
) -> i64 {
    let mut total = 0i64;
    for i in 0..iters as i64 {
        if i % branch_mod == 0 {
            total += then_add;
        } else {
            total += (i * 3) % else_mul_mod + 1;
        }
        if second_branch && i % 7 == 3 {
            total -= 1;
        }
    }
    total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn jit_matches_interpreter_on_random_branchy_loops(
        iters in 200u32..1500,
        branch_mod in 2i64..9,
        then_add in 1i64..50,
        else_mul_mod in 2i64..11,
        second_branch in any::<bool>(),
        hot in prop_oneof![Just(8u32), Just(32), Just(64), Just(200)],
        bridge in prop_oneof![Just(2u32), Just(8), Just(64)],
    ) {
        let src = random_program(iters, branch_mod, then_add, else_mul_mod, second_branch);
        let expect = model(iters, branch_mod, then_add, else_mul_mod, second_branch);
        let jit_cfg = JitConfig {
            hot_threshold: hot,
            bridge_threshold: bridge,
            max_steps: 10_000_000,
            ..JitConfig::default()
        };
        let mut vm = qoa_jit::run_source(&src, jit_cfg, CountingSink::new())
            .map_err(|e| TestCaseError::fail(format!("jit: {e}\n{src}")))?;
        prop_assert_eq!(vm.vm.global_int("total"), Some(expect), "jit diverged\n{}", src);

        let mut vm = qoa_jit::run_source(
            &src,
            JitConfig { max_steps: 10_000_000, ..JitConfig::interpreter_only() },
            CountingSink::new(),
        )
        .map_err(|e| TestCaseError::fail(format!("nojit: {e}\n{src}")))?;
        prop_assert_eq!(vm.vm.global_int("total"), Some(expect), "interp diverged\n{}", src);
    }

    /// The JIT never loses or duplicates loop iterations across nursery
    /// pressure: an allocation-heavy loop under a tiny nursery (constant
    /// GC) still computes exactly.
    #[test]
    fn jit_survives_gc_pressure(
        iters in 500u32..3000,
        nursery_kb in prop_oneof![Just(16u64), Just(32), Just(64)],
    ) {
        let src = format!(
            "total = 0\nfor i in range({iters}):\n    xs = [i, i + 1, i + 2]\n    total = total + xs[1]\n"
        );
        let expect: i64 = (0..iters as i64).map(|i| i + 1).sum();
        let cfg = JitConfig {
            nursery_size: nursery_kb << 10,
            max_steps: 50_000_000,
            ..JitConfig::default()
        };
        let mut vm = qoa_jit::run_source(&src, cfg, CountingSink::new())
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(vm.vm.global_int("total"), Some(expect));
        prop_assert!(vm.vm.stats().gc.minor_collections > 0);
    }
}
