//! PyPy-model tracing JIT driving the `qoa-vm` interpreter.
//!
//! Implements the just-in-time pipeline of the paper's Fig. 2:
//! **counters** on loop back-edges → **profiling/recording** of one loop
//! iteration (the bytecode location sequence, with implicit type and
//! branch guards) → **compilation** (the trace is assigned a region of the
//! simulated JIT code space and an optimizer-pass cost is charged under
//! [`qoa_model::Phase::JitCompile`]) → **compiled execution** (the same
//! semantics run under the [`qoa_vm::CostMode::Trace`] cost model:
//! no dispatch, no stack traffic, guards instead of full checks, unboxed
//! virtual temporaries, virtualized frames — but real C calls into the
//! native library, reproducing the paper's Fig. 5) → **guard failure**
//! handling: hot side-exits get their own compiled **bridge** traces
//! (as in PyPy — the paper's Fig. 2 notes "some additional steps can be
//! added to the JIT process to better handle guard failures"), cold ones
//! **deoptimize** back to the interpreter, and hopeless loops are
//! blacklisted.
//!
//! The `PyPy w/o JIT` configuration of the paper is this driver with the
//! JIT disabled: the interpreter cost model over the generational heap.
//!
//! # Example
//!
//! ```
//! use qoa_model::CountingSink;
//! use qoa_jit::{JitConfig, PyPyVm};
//!
//! let src = "total = 0\nfor i in range(2000):\n    total = total + i\n";
//! let code = qoa_frontend::compile(src).expect("compiles");
//! let mut vm = PyPyVm::new(JitConfig::default(), CountingSink::new());
//! vm.load_program(&code);
//! vm.run().expect("runs");
//! assert_eq!(vm.vm.global_int("total"), Some(1999000));
//! assert!(vm.jit_stats().trace_executions > 0);
//! ```

use qoa_frontend::CodeObject;
use qoa_heap::GcConfig;
use qoa_model::{mem, OpSink};
use qoa_vm::{CostMode, HeapMode, StepEvent, Vm, VmConfig, VmError};
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// Tracing-JIT configuration.
#[derive(Debug, Clone, Copy)]
pub struct JitConfig {
    /// Whether the JIT is enabled at all (`false` = "PyPy w/o JIT").
    pub enabled: bool,
    /// Back-edge count that makes a loop hot (PyPy's default is 1039; the
    /// scaled-down workloads here use a smaller threshold).
    pub hot_threshold: u32,
    /// Guard failures at one side-exit before a bridge is compiled for it.
    pub bridge_threshold: u32,
    /// Maximum compiled fragments (main trace + bridges) per loop before
    /// the loop is considered trace-hostile and blacklisted.
    pub max_fragments: usize,
    /// Maximum recorded trace length (bytecodes) before aborting.
    pub trace_limit: usize,
    /// Simulated machine-code bytes per trace bytecode.
    pub code_bytes_per_step: u64,
    /// Nursery size for the generational heap.
    pub nursery_size: u64,
    /// Execution fuel (0 = unlimited).
    pub max_steps: u64,
    /// Wall-clock deadline (`None` = unlimited); polled cooperatively.
    pub deadline: Option<std::time::Instant>,
    /// Simulated live-heap cap in bytes (0 = unlimited).
    pub max_heap_bytes: u64,
}

impl Default for JitConfig {
    fn default() -> Self {
        JitConfig {
            enabled: true,
            hot_threshold: 64,
            bridge_threshold: 8,
            max_fragments: 48,
            trace_limit: 4096,
            code_bytes_per_step: 32,
            nursery_size: 4 << 20,
            max_steps: 0,
            deadline: None,
            max_heap_bytes: 0,
        }
    }
}

impl JitConfig {
    /// The paper's "PyPy w/o JIT" configuration.
    pub fn interpreter_only() -> Self {
        JitConfig { enabled: false, ..JitConfig::default() }
    }

    /// Returns a copy with the given nursery size (the §V-B sweep knob).
    pub fn with_nursery(mut self, bytes: u64) -> Self {
        self.nursery_size = bytes;
        self
    }

    /// V8-flavoured preset: a more eager (method-JIT-like) compilation
    /// threshold, larger generated code per step, and a smaller default
    /// nursery — the knobs that distinguish the V8 runs in Fig. 6/9/16.
    pub fn v8() -> Self {
        JitConfig {
            enabled: true,
            hot_threshold: 16,
            bridge_threshold: 4,
            max_fragments: 64,
            trace_limit: 8192,
            code_bytes_per_step: 48,
            nursery_size: 2 << 20,
            max_steps: 0,
            deadline: None,
            max_heap_bytes: 0,
        }
    }
}

/// JIT pipeline statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JitStats {
    /// Main loop traces compiled.
    pub traces_compiled: u64,
    /// Bridge traces compiled for hot side-exits.
    pub bridges_compiled: u64,
    /// Completed trace-loop iterations (main-trace wraps).
    pub trace_executions: u64,
    /// Guard failures (execution diverged from the running fragment).
    pub guard_failures: u64,
    /// Guard failures that continued in a compiled bridge.
    pub bridge_transfers: u64,
    /// Deoptimizations back to the interpreter.
    pub deopts: u64,
    /// Loops blacklisted as trace-hostile.
    pub blacklisted: u64,
    /// Recordings aborted (too long or program end).
    pub aborted_recordings: u64,
    /// Bytecodes executed under the trace cost model.
    pub jit_bytecodes: u64,
    /// Bytecodes executed under the interpreter cost model.
    pub interp_bytecodes: u64,
}

/// A bytecode location: (code identity, bytecode index).
type Loc = (usize, usize);

#[derive(Debug, Clone)]
struct Fragment {
    steps: Vec<Loc>,
    code_base: u64,
    /// (step index, diverged-to location) → bridge fragment index.
    bridges: HashMap<(usize, Loc), usize>,
    /// Guard-failure counts per (step index, diverged-to location).
    fail_counts: HashMap<(usize, Loc), u32>,
}

#[derive(Debug, Clone)]
struct LoopTraces {
    fragments: Vec<Fragment>,
    blacklisted: bool,
    /// Side exits that failed to record a bridge; never retried.
    hopeless_exits: HashSet<(usize, usize, Loc)>,
}

#[derive(Debug, Clone)]
enum DriverState {
    Interp,
    Recording {
        header: Loc,
        /// `Some((fragment, idx, loc))` when recording a bridge for that
        /// side exit of the loop's fragment.
        parent: Option<(usize, usize, Loc)>,
        steps: Vec<Loc>,
    },
    Executing {
        header: Loc,
        frag: usize,
        idx: usize,
    },
}

/// The PyPy-model run-time: interpreter + generational GC + tracing JIT
/// with bridge compilation.
///
/// Like [`Vm`], the whole run-time is `Clone` (when the sink is): the
/// driver state machine, trace book-keeping, and the underlying machine
/// snapshot and restore together for chaos checkpoint/restore.
#[derive(Clone)]
pub struct PyPyVm<S: OpSink> {
    /// The underlying VM (public for inspection of globals, stats, output).
    pub vm: Vm<S>,
    cfg: JitConfig,
    counters: HashMap<Loc, u32>,
    loops: HashMap<Loc, LoopTraces>,
    state: DriverState,
    stats: JitStats,
    jit_code_bump: u64,
}

impl<S: OpSink> PyPyVm<S> {
    /// Creates the run-time with the given JIT configuration.
    pub fn new(cfg: JitConfig, sink: S) -> Self {
        let vm_cfg = VmConfig {
            heap: HeapMode::Gen(GcConfig::with_nursery(cfg.nursery_size)),
            max_steps: cfg.max_steps,
            deadline: cfg.deadline,
            max_heap_bytes: cfg.max_heap_bytes,
        };
        PyPyVm {
            vm: Vm::new(vm_cfg, sink),
            cfg,
            counters: HashMap::new(),
            loops: HashMap::new(),
            state: DriverState::Interp,
            stats: JitStats::default(),
            jit_code_bump: mem::JIT_CODE_BASE,
        }
    }

    /// Loads a program (see [`Vm::load_program`]).
    pub fn load_program(&mut self, code: &Rc<CodeObject>) {
        self.vm.load_program(code);
    }

    /// Loads a statically verified program with dispatch guard checks
    /// elided (see [`Vm::load_verified`]).
    pub fn load_verified(&mut self, code: &qoa_analysis::Verified<Rc<CodeObject>>) {
        self.vm.load_verified(code);
    }

    /// JIT pipeline statistics.
    pub fn jit_stats(&self) -> JitStats {
        self.stats
    }

    /// The configuration in effect.
    pub fn config(&self) -> &JitConfig {
        &self.cfg
    }

    /// Total bytes of simulated JIT code emitted.
    pub fn jit_code_bytes(&self) -> u64 {
        self.jit_code_bump - mem::JIT_CODE_BASE
    }

    /// Bytecodes executed so far (see [`Vm::steps`]).
    pub fn steps(&self) -> u64 {
        self.vm.steps()
    }

    /// Replaces the execution fuel budget on the underlying machine (see
    /// [`Vm::set_fuel`]). Kept in sync on the driver's own config so a
    /// snapshot of this machine restores with the same limit.
    pub fn set_fuel(&mut self, max_steps: u64) {
        self.cfg.max_steps = max_steps;
        self.vm.set_fuel(max_steps);
    }

    /// Replaces the wall-clock deadline on the underlying machine (see
    /// [`Vm::set_deadline`]).
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.cfg.deadline = deadline;
        self.vm.set_deadline(deadline);
    }

    /// Arms a chaos plan on the underlying machine (see [`Vm::arm_chaos`]).
    pub fn arm_chaos(&mut self, chaos: qoa_chaos::ChaosState) {
        self.vm.arm_chaos(chaos);
    }

    /// Takes the record of the most recent injected fault (see
    /// [`Vm::take_injected`]).
    pub fn take_injected(&mut self) -> Option<qoa_chaos::FaultRecord> {
        self.vm.take_injected()
    }

    /// Runs the program to completion.
    ///
    /// # Errors
    ///
    /// Propagates guest run-time errors.
    pub fn run(&mut self) -> Result<(), VmError> {
        loop {
            if self.step_driver()? {
                return Ok(());
            }
        }
    }

    /// Advances execution by one bytecode under the driver's state
    /// machine. Returns `true` when the program is done.
    ///
    /// # Errors
    ///
    /// Propagates guest run-time errors.
    pub fn step_driver(&mut self) -> Result<bool, VmError> {
        match std::mem::replace(&mut self.state, DriverState::Interp) {
            DriverState::Interp => self.drive_interp(),
            DriverState::Recording { header, parent, steps } => {
                self.drive_recording(header, parent, steps)
            }
            DriverState::Executing { header, frag, idx } => {
                self.drive_executing(header, frag, idx)
            }
        }
    }

    fn drive_interp(&mut self) -> Result<bool, VmError> {
        // Entering a compiled loop?
        if self.cfg.enabled {
            if let Some(loc) = self.vm.location() {
                if let Some(lt) = self.loops.get(&loc) {
                    if !lt.blacklisted && !lt.fragments.is_empty() {
                        let base = lt.fragments[0].code_base;
                        self.vm.set_cost_mode(CostMode::Trace);
                        self.vm.set_trace_pc(base);
                        self.state = DriverState::Executing { header: loc, frag: 0, idx: 0 };
                        return Ok(false);
                    }
                }
            }
        }
        self.stats.interp_bytecodes += 1;
        match self.vm.step()? {
            StepEvent::Done => return Ok(true),
            StepEvent::Backedge { code, target } if self.cfg.enabled => {
                let key = (code, target);
                let hot = {
                    let c = self.counters.entry(key).or_insert(0);
                    *c += 1;
                    *c
                };
                if hot >= self.cfg.hot_threshold && !self.loops.contains_key(&key) {
                    self.state =
                        DriverState::Recording { header: key, parent: None, steps: Vec::new() };
                    return Ok(false);
                }
            }
            _ => {}
        }
        self.state = DriverState::Interp;
        Ok(false)
    }

    fn drive_recording(
        &mut self,
        header: Loc,
        parent: Option<(usize, usize, Loc)>,
        mut steps: Vec<Loc>,
    ) -> Result<bool, VmError> {
        let Some(loc) = self.vm.location() else {
            self.stats.aborted_recordings += 1;
            return Ok(true);
        };
        if loc == header && !steps.is_empty() {
            // Injected transient compile failure: the backend refuses this
            // recording. The loop is *not* blacklisted — its counter stays
            // hot, so a later attempt retries the compile, which is the
            // graceful-degradation path (interpreter keeps running either
            // way). In surface mode the fault propagates so the harness
            // can restore a checkpoint instead.
            if let Some(rec) = self.vm.chaos_poll(qoa_chaos::FaultKind::JitCompileFault) {
                self.stats.aborted_recordings += 1;
                self.state = DriverState::Interp;
                if self.vm.chaos_degrade_jit() {
                    self.vm.chaos_note_recovery();
                    return Ok(false);
                }
                return Err(VmError::Injected { what: rec.kind.name(), steps: self.vm.steps() });
            }
            // The path closed back to the loop header: compile it.
            self.finish_fragment(header, parent, steps);
            self.state = DriverState::Interp;
            return Ok(false);
        }
        if steps.len() >= self.cfg.trace_limit {
            self.stats.aborted_recordings += 1;
            match parent {
                None => {
                    // The main trace cannot be recorded: blacklist the loop.
                    self.loops.insert(
                        header,
                        LoopTraces {
                            fragments: Vec::new(),
                            blacklisted: true,
                            hopeless_exits: HashSet::new(),
                        },
                    );
                    self.stats.blacklisted += 1;
                }
                Some(exit) => {
                    if let Some(lt) = self.loops.get_mut(&header) {
                        lt.hopeless_exits.insert(exit);
                    }
                }
            }
            self.state = DriverState::Interp;
            return Ok(false);
        }
        steps.push(loc);
        self.stats.interp_bytecodes += 1;
        match self.vm.step()? {
            StepEvent::Done => {
                self.stats.aborted_recordings += 1;
                Ok(true)
            }
            _ => {
                self.state = DriverState::Recording { header, parent, steps };
                Ok(false)
            }
        }
    }

    fn drive_executing(
        &mut self,
        header: Loc,
        frag: usize,
        idx: usize,
    ) -> Result<bool, VmError> {
        let Some(loc) = self.vm.location() else { return Ok(true) };
        // Injected mid-trace abort: the compiled code hits a synthetic
        // failure and must deoptimize. The deopt leaves the interpreter
        // state fully materialized, so in degrade mode the run simply
        // continues interpreting (a phase change the sink records); in
        // surface mode the harness restores a checkpoint.
        if let Some(rec) = self.vm.chaos_poll(qoa_chaos::FaultKind::TraceAbort) {
            self.vm.emit_deopt();
            self.vm.set_cost_mode(CostMode::Interp);
            self.stats.deopts += 1;
            self.state = DriverState::Interp;
            if self.vm.chaos_degrade_jit() {
                self.vm.chaos_note_recovery();
                return Ok(false);
            }
            return Err(VmError::Injected { what: rec.kind.name(), steps: self.vm.steps() });
        }
        let expected = {
            let lt = self
                .loops
                .get(&header)
                .ok_or_else(|| VmError::runtime("jit driver: executing an unknown loop", 0))?;
            lt.fragments[frag].steps[idx]
        };
        if loc != expected {
            return self.handle_guard_failure(header, frag, idx, loc);
        }
        self.stats.jit_bytecodes += 1;
        if let StepEvent::Done = self.vm.step()? {
            self.vm.set_cost_mode(CostMode::Interp);
            return Ok(true);
        }
        let lt = self
            .loops
            .get(&header)
            .ok_or_else(|| VmError::runtime("jit driver: lost the executing loop", 0))?;
        let fragment = &lt.fragments[frag];
        if idx + 1 >= fragment.steps.len() {
            // Fragment complete: both the main trace and bridges jump back
            // to the top of the main loop code.
            if frag == 0 {
                self.stats.trace_executions += 1;
            }
            let base = lt.fragments[0].code_base;
            self.vm.set_trace_pc(base);
            self.state = DriverState::Executing { header, frag: 0, idx: 0 };
        } else {
            self.state = DriverState::Executing { header, frag, idx: idx + 1 };
        }
        Ok(false)
    }

    fn handle_guard_failure(
        &mut self,
        header: Loc,
        frag: usize,
        idx: usize,
        loc: Loc,
    ) -> Result<bool, VmError> {
        self.stats.guard_failures += 1;
        let bridge_threshold = self.cfg.bridge_threshold;
        let max_fragments = self.cfg.max_fragments;
        let Some(lt) = self.loops.get_mut(&header) else {
            return Err(VmError::runtime("jit driver: guard failure in an unknown loop", 0));
        };

        // A compiled bridge for this exact side exit?
        if let Some(&bridge) = lt.fragments[frag].bridges.get(&(idx, loc)) {
            self.stats.bridge_transfers += 1;
            let base = lt.fragments[bridge].code_base;
            self.vm.set_trace_pc(base);
            self.state = DriverState::Executing { header, frag: bridge, idx: 0 };
            return Ok(false);
        }

        // Count the failure; decide whether to record a bridge.
        let fails = {
            let c = lt.fragments[frag].fail_counts.entry((idx, loc)).or_insert(0);
            *c += 1;
            *c
        };
        let hopeless = lt.hopeless_exits.contains(&(frag, idx, loc));
        let room = lt.fragments.len() < max_fragments;
        if fails >= bridge_threshold && !hopeless && room {
            // Deoptimize this time, record the bridge as we go.
            self.vm.emit_deopt();
            self.vm.set_cost_mode(CostMode::Interp);
            self.stats.deopts += 1;
            self.state = DriverState::Recording {
                header,
                parent: Some((frag, idx, loc)),
                steps: Vec::new(),
            };
            return Ok(false);
        }
        if fails >= bridge_threshold && !room {
            // Trace-hostile loop: too many distinct paths.
            lt.blacklisted = true;
            self.stats.blacklisted += 1;
        }
        // Cold exit: plain deoptimization.
        self.vm.emit_deopt();
        self.vm.set_cost_mode(CostMode::Interp);
        self.stats.deopts += 1;
        self.state = DriverState::Interp;
        Ok(false)
    }

    fn finish_fragment(&mut self, header: Loc, parent: Option<(usize, usize, Loc)>, steps: Vec<Loc>) {
        let code_len = (steps.len() as u64) * self.cfg.code_bytes_per_step;
        let code_base = self.jit_code_bump;
        self.jit_code_bump += code_len.div_ceil(64) * 64;
        self.vm.emit_jit_compile(steps.len(), code_base, code_len);
        let fragment = Fragment {
            steps,
            code_base,
            bridges: HashMap::new(),
            fail_counts: HashMap::new(),
        };
        match parent {
            None => {
                self.loops.insert(
                    header,
                    LoopTraces {
                        fragments: vec![fragment],
                        blacklisted: false,
                        hopeless_exits: HashSet::new(),
                    },
                );
                self.stats.traces_compiled += 1;
            }
            Some((pfrag, idx, loc)) => {
                let Some(lt) = self.loops.get_mut(&header) else { return };
                if lt.blacklisted {
                    return;
                }
                lt.fragments.push(fragment);
                let bridge_id = lt.fragments.len() - 1;
                lt.fragments[pfrag].bridges.insert((idx, loc), bridge_id);
                self.stats.bridges_compiled += 1;
            }
        }
    }
}

/// Compiles and runs a program under the PyPy-model run-time.
///
/// # Errors
///
/// Returns the compile error or the guest run-time error.
pub fn run_source<S: OpSink>(
    source: &str,
    cfg: JitConfig,
    sink: S,
) -> Result<PyPyVm<S>, VmError> {
    let code = qoa_frontend::compile(source)?;
    let mut vm = PyPyVm::new(cfg, sink);
    vm.load_program(&code);
    vm.run()?;
    Ok(vm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoa_model::{Category, CountingSink, Phase};

    fn run_jit(src: &str) -> PyPyVm<CountingSink> {
        run_source(src, JitConfig::default(), CountingSink::new())
            .unwrap_or_else(|e| panic!("jit run failed: {e}\n{src}"))
    }

    fn run_nojit(src: &str) -> PyPyVm<CountingSink> {
        run_source(src, JitConfig::interpreter_only(), CountingSink::new())
            .unwrap_or_else(|e| panic!("no-jit run failed: {e}\n{src}"))
    }

    const HOT_LOOP: &str = "total = 0\nfor i in range(5000):\n    total = total + i * 2\n";

    #[test]
    fn hot_loop_gets_compiled_and_executed() {
        let mut vm = run_jit(HOT_LOOP);
        assert_eq!(
            vm.vm.global_int("total"),
            Some((0..5000i64).map(|i| i * 2).sum())
        );
        let s = vm.jit_stats();
        assert_eq!(s.traces_compiled, 1, "{s:?}");
        assert!(s.trace_executions > 4000, "{s:?}");
        assert!(vm.jit_code_bytes() > 0);
    }

    #[test]
    fn jit_disabled_compiles_nothing() {
        let mut vm = run_nojit(HOT_LOOP);
        assert_eq!(
            vm.vm.global_int("total"),
            Some((0..5000i64).map(|i| i * 2).sum())
        );
        let s = vm.jit_stats();
        assert_eq!(s.traces_compiled, 0);
        assert_eq!(s.trace_executions, 0);
        assert_eq!(s.jit_bytecodes, 0);
    }

    #[test]
    fn jit_reduces_instruction_count() {
        let vm_jit = run_jit(HOT_LOOP);
        let vm_int = run_nojit(HOT_LOOP);
        let (sink_jit, _) = vm_jit.vm.finish();
        let (sink_int, _) = vm_int.vm.finish();
        assert!(
            (sink_jit.total() as f64) < sink_int.total() as f64 * 0.6,
            "jit {} vs interp {}",
            sink_jit.total(),
            sink_int.total()
        );
    }

    #[test]
    fn jit_phases_are_annotated() {
        let vm = run_jit(HOT_LOOP);
        let (sink, _) = vm.vm.finish();
        assert!(sink.by_phase[Phase::JitCompile] > 0, "compile phase missing");
        assert!(sink.by_phase[Phase::JitCode] > 0, "jit-code phase missing");
        assert!(sink.by_phase[Phase::Interpreter] > 0, "warmup phase missing");
    }

    #[test]
    fn trace_mode_elides_dispatch_and_stack() {
        // Dispatch/stack ops only come from the interpreter cost model, so
        // their share must drop sharply with the JIT on.
        let vm_jit = run_jit(HOT_LOOP);
        let vm_int = run_nojit(HOT_LOOP);
        let (sj, _) = vm_jit.vm.finish();
        let (si, _) = vm_int.vm.finish();
        let share =
            |s: &CountingSink, c: Category| s.by_category[c] as f64 / s.total() as f64;
        assert!(share(&sj, Category::Dispatch) < share(&si, Category::Dispatch) * 0.5);
        assert!(share(&sj, Category::Stack) < share(&si, Category::Stack) * 0.5);
    }

    #[test]
    fn semantics_match_interpreter_across_programs() {
        let programs: &[(&str, &str, i64)] = &[
            (
                "def fib(n):\n    a = 0\n    b = 1\n    i = 0\n    while i < n:\n        a, b = b, a + b\n        i += 1\n    return a\nx = fib(60)\n",
                "x",
                1548008755920,
            ),
            (
                "xs = []\nfor i in range(1000):\n    xs.append(i * i)\nx = sum(xs)\n",
                "x",
                (0..1000i64).map(|i| i * i).sum(),
            ),
            (
                "d = {}\nfor i in range(500):\n    d[i] = i * 3\nx = 0\nfor k in d:\n    x = x + d[k]\n",
                "x",
                (0..500i64).map(|i| i * 3).sum(),
            ),
            (
                "class Acc:\n    def __init__(self):\n        self.v = 0\n    def add(self, k):\n        self.v += k\na = Acc()\nfor i in range(800):\n    a.add(i)\nx = a.v\n",
                "x",
                (0..800i64).sum(),
            ),
        ];
        for (src, var, expect) in programs {
            let mut vm = run_jit(src);
            assert_eq!(vm.vm.global_int(var), Some(*expect), "jit: {src}");
            let mut vm = run_nojit(src);
            assert_eq!(vm.vm.global_int(var), Some(*expect), "nojit: {src}");
        }
    }

    #[test]
    fn branchy_loops_get_bridges_and_stay_compiled() {
        // The body alternates paths every iteration: the main trace's
        // guard fails immediately, a bridge gets compiled, and afterwards
        // both paths run as compiled code.
        let src = "
total = 0
for i in range(4000):
    if i % 2 == 0:
        total = total + 1
    else:
        total = total + 2
";
        let mut vm = run_jit(src);
        assert_eq!(vm.vm.global_int("total"), Some(4000 / 2 * 3));
        let s = vm.jit_stats();
        assert!(s.bridges_compiled >= 1, "{s:?}");
        assert!(s.bridge_transfers > 1000, "{s:?}");
        // Most execution should be compiled, not interpreted.
        assert!(s.jit_bytecodes > s.interp_bytecodes, "{s:?}");
    }

    #[test]
    fn rare_guard_failures_deoptimize_correctly() {
        let src = "
total = 0
for i in range(3000):
    if i % 13 == 0:
        total = total + 100
    else:
        total = total + 1
";
        let mut vm = run_jit(src);
        let expect: i64 = (0..3000i64).map(|i| if i % 13 == 0 { 100 } else { 1 }).sum();
        assert_eq!(vm.vm.global_int("total"), Some(expect));
        let s = vm.jit_stats();
        assert!(s.guard_failures > 0, "{s:?}");
        assert!(s.trace_executions > 0, "{s:?}");
    }

    #[test]
    fn path_explosion_blacklists_the_loop() {
        // More distinct hot paths than max_fragments: the loop must give
        // up and fall back to the interpreter without losing correctness.
        let cfg = JitConfig { max_fragments: 3, bridge_threshold: 2, ..JitConfig::default() };
        let src = "
rand_seed(9)
total = 0
for i in range(4000):
    k = randint(0, 9)
    if k == 0:
        total = total + 1
    elif k == 1:
        total = total + 2
    elif k == 2:
        total = total + 3
    elif k == 3:
        total = total + 4
    elif k == 4:
        total = total + 5
    elif k == 5:
        total = total + 6
    elif k == 6:
        total = total + 7
    elif k == 7:
        total = total + 8
    elif k == 8:
        total = total + 9
    else:
        total = total + 10
";
        let mut vm = run_source(src, cfg, CountingSink::new()).expect("runs");
        let s = vm.jit_stats();
        assert!(s.blacklisted > 0, "{s:?}");
        let total = vm.vm.global_int("total").expect("total");
        assert!(total > 4000, "computed {total}");
    }

    #[test]
    fn inlined_calls_are_traced_through() {
        let src = "
def double(x):
    return x * 2
total = 0
for i in range(2000):
    total = total + double(i)
";
        let mut vm = run_jit(src);
        assert_eq!(
            vm.vm.global_int("total"),
            Some((0..2000i64).map(|i| i * 2).sum())
        );
        let s = vm.jit_stats();
        assert_eq!(s.traces_compiled, 1, "{s:?}");
        assert!(s.trace_executions > 1500, "{s:?}");
    }

    #[test]
    fn c_calls_survive_in_traces() {
        // Calls into the native library cannot be traced away (Fig. 5).
        let src = "
total = 0
for i in range(2000):
    total = total + len('abcdef')
";
        let vm = run_jit(src);
        let s = vm.jit_stats();
        assert!(s.trace_executions > 1000, "{s:?}");
        let (sink, _) = vm.vm.finish();
        assert!(sink.by_category[Category::CFunctionCall] > 2000 * 8);
    }

    #[test]
    fn nursery_size_is_configurable() {
        let small = JitConfig::default().with_nursery(512 << 10);
        let vm = run_source(
            "xs = []\nfor i in range(20000):\n    xs.append([i])\n",
            small,
            CountingSink::new(),
        )
        .expect("runs");
        let mut inner = vm.vm;
        let stats = inner.stats();
        assert!(stats.gc.minor_collections > 0, "{:?}", stats.gc);
    }

    #[test]
    fn v8_preset_compiles_more_eagerly() {
        let src = "t = 0\nfor i in range(200):\n    t = t + i\n";
        let eager = run_source(src, JitConfig::v8(), CountingSink::new()).expect("runs");
        let lazy = run_source(src, JitConfig::default(), CountingSink::new()).expect("runs");
        assert!(eager.jit_stats().jit_bytecodes >= lazy.jit_stats().jit_bytecodes);
    }
}
