//! Property tests for the serving lifecycle's two safety contracts:
//! deadlines never yield partial results, and overload rejections are
//! always accounted as shed, never failed.

use proptest::prelude::*;
use qoa_serve::{
    calibrate, generate, serve, standard_tenants, ArrivalSpec, Calibration, Outcome, ServeConfig,
    TenantConfig, TenantMix, TokenBucketConfig,
};
use qoa_workloads::Scale;
use std::sync::OnceLock;

fn base() -> &'static (ServeConfig, Calibration) {
    static BASE: OnceLock<(ServeConfig, Calibration)> = OnceLock::new();
    BASE.get_or_init(|| {
        let cfg = ServeConfig::new(&["go"], Scale::Tiny, Vec::new()).expect("workload resolves");
        let calib = calibrate(&cfg).expect("calibrates");
        (cfg, calib)
    })
}

fn mix_of(tenants: &[TenantConfig]) -> Vec<TenantMix> {
    tenants
        .iter()
        .map(|t| TenantMix { weight: t.weight, priority: t.priority, deadline: t.deadline })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A request past its deadline is shed — it never returns a
    /// (possibly partial) result, whatever the deadline tightness.
    /// `factor` sweeps from deadlines far below one service time to
    /// comfortable ones; the fuel cap and the virtual-queue check must
    /// agree that late means no payload.
    #[test]
    fn past_deadline_requests_are_shed_not_answered(
        seed in any::<u64>(),
        factor in 1u64..=10,
    ) {
        let (cfg0, calib) = base();
        let mut cfg = cfg0.clone();
        let mean = calib.mean_cost_full.max(1);
        // One permissive tenant whose deadline is factor/4 service
        // times: factor < 4 makes every request undeliverable.
        cfg.tenants = vec![TenantConfig {
            name: "t".into(),
            priority: 0,
            deadline: (mean * factor / 4).max(1),
            bucket: TokenBucketConfig { burst: 64, refill_per_m: u64::MAX / 2_000_000 },
            weight: 1,
        }];
        let rate = calib.capacity_per_m(cfg.virtual_workers).max(1) / 2;
        let requests = generate(&ArrivalSpec {
            seed,
            count: 16,
            rate_per_m: rate.max(1),
            tenants: mix_of(&cfg.tenants),
            workload_weights: vec![1],
        });
        let report = serve(&cfg, &requests, calib).expect("serves");
        for rec in &report.records {
            match &rec.outcome {
                Outcome::Ok { done, result, .. } => {
                    prop_assert!(
                        done - rec.arrival <= rec.deadline,
                        "request {} answered {} vcycles past its deadline",
                        rec.id,
                        done - rec.arrival - rec.deadline
                    );
                    prop_assert!(result.is_some(), "served request {} lost its payload", rec.id);
                }
                Outcome::Shed { .. } => {}
                Outcome::Failed { kind, message } => prop_assert!(
                    false,
                    "deadline pressure hard-failed request {}: {kind}: {message}",
                    rec.id
                ),
            }
        }
        if factor < 4 {
            prop_assert_eq!(
                report.count("ok"), 0,
                "deadline below one service time cannot be met"
            );
        }
    }

    /// Under 2x offered load every rejection is reported as shed
    /// (admission, queue, breaker, or deadline) — never as failed.
    #[test]
    fn twice_capacity_rejections_are_shed_not_failed(seed in any::<u64>()) {
        let (cfg0, calib) = base();
        let mut cfg = cfg0.clone();
        let rate = (calib.capacity_per_m(cfg.virtual_workers) * 2).max(1);
        cfg.tenants = standard_tenants(rate, calib.mean_cost_full);
        let requests = generate(&ArrivalSpec {
            seed,
            count: 24,
            rate_per_m: rate,
            tenants: mix_of(&cfg.tenants),
            workload_weights: vec![1],
        });
        let report = serve(&cfg, &requests, calib).expect("serves");
        prop_assert_eq!(report.failed(), 0, "overload must degrade gracefully, not fail");
        prop_assert_eq!(
            report.count("ok") + report.shed_total(),
            requests.len() as u64,
            "every request must be accounted served-or-shed"
        );
    }
}
