//! End-to-end serving invariants: determinism across jobs counts, the
//! chaos differential oracle, and graceful overload degradation.

use qoa_serve::{
    calibrate, generate, journal_line, render_journal, serve, standard_tenants,
    strip_fault_counters, ArrivalSpec, Calibration, ChaosConfig, Outcome, ServeConfig, TenantMix,
};
use qoa_workloads::Scale;

fn base() -> (ServeConfig, Calibration) {
    let mut cfg = ServeConfig::new(&["go"], Scale::Tiny, Vec::new()).expect("workload resolves");
    let calib = calibrate(&cfg).expect("calibrates");
    let rate = calib.capacity_per_m(cfg.virtual_workers);
    cfg.tenants = standard_tenants(rate, calib.mean_cost_full);
    (cfg, calib)
}

fn burst(cfg: &ServeConfig, calib: &Calibration, count: usize, load_pct: u64, seed: u64) -> Vec<qoa_serve::Request> {
    let rate = (calib.capacity_per_m(cfg.virtual_workers) * load_pct / 100).max(1);
    generate(&ArrivalSpec {
        seed,
        count,
        rate_per_m: rate,
        tenants: cfg
            .tenants
            .iter()
            .map(|t| TenantMix { weight: t.weight, priority: t.priority, deadline: t.deadline })
            .collect(),
        workload_weights: vec![1; cfg.workloads.len()],
    })
}

#[test]
fn journal_is_identical_across_jobs_counts() {
    let (mut cfg, calib) = base();
    let requests = burst(&cfg, &calib, 40, 120, 9);
    cfg.jobs = 1;
    let seq = serve(&cfg, &requests, &calib).expect("serves sequentially");
    cfg.jobs = 4;
    let par = serve(&cfg, &requests, &calib).expect("serves in parallel");
    assert_eq!(
        render_journal(&cfg, &seq),
        render_journal(&cfg, &par),
        "virtual-time journal must not depend on OS thread count"
    );
}

#[test]
fn chaos_run_matches_fault_free_modulo_counters() {
    let (mut cfg, calib) = base();
    let requests = burst(&cfg, &calib, 40, 110, 5);
    let clean = serve(&cfg, &requests, &calib).expect("fault-free run");
    cfg.chaos = Some(ChaosConfig { seed: 11, points: 2 });
    let chaotic = serve(&cfg, &requests, &calib).expect("chaos run");
    assert!(chaotic.faults() > 0, "chaos seed 11 should fire at least once over 40 requests");
    assert_eq!(chaotic.faults(), chaotic.restores(), "every fault recovers via one restore");
    let clean_lines: Vec<String> =
        clean.records.iter().map(|r| strip_fault_counters(&journal_line(r))).collect();
    let chaos_lines: Vec<String> =
        chaotic.records.iter().map(|r| strip_fault_counters(&journal_line(r))).collect();
    assert_eq!(
        clean_lines, chaos_lines,
        "client-visible journal must be byte-identical: slow answers, never wrong ones"
    );
}

#[test]
fn overload_sheds_but_never_fails() {
    let (cfg, calib) = base();
    let requests = burst(&cfg, &calib, 60, 200, 3);
    let report = serve(&cfg, &requests, &calib).expect("serves at 2x");
    assert_eq!(report.failed(), 0, "overload alone must never hard-fail a request");
    assert!(report.shed_total() > 0, "2x offered load must shed something");
    assert_eq!(
        report.count("ok") + report.shed_total(),
        requests.len() as u64,
        "every request is either served or shed"
    );
    for rec in &report.records {
        if let Outcome::Ok { done, result, .. } = &rec.outcome {
            assert!(done - rec.arrival <= rec.deadline, "request {} returned late", rec.id);
            assert!(result.is_some(), "request {} served without a payload", rec.id);
        }
    }
}

#[test]
fn served_answers_match_calibration_baseline() {
    let (cfg, calib) = base();
    let requests = burst(&cfg, &calib, 24, 80, 2);
    let report = serve(&cfg, &requests, &calib).expect("serves at 0.8x");
    let mut served = 0;
    for rec in &report.records {
        if let Outcome::Ok { result, out_hash, .. } = &rec.outcome {
            let wi = cfg.workloads.iter().position(|w| w.name == rec.workload).expect("known");
            let entry = calib.entry(wi, rec.tier).expect("calibrated");
            assert_eq!(result, &entry.result, "request {} wrong payload", rec.id);
            assert_eq!(*out_hash, entry.out_hash, "request {} wrong stdout", rec.id);
            served += 1;
        }
    }
    assert!(served > 0, "a 0.8x burst should serve most requests");
}

#[test]
fn metrics_exposition_round_trips() {
    let (cfg, calib) = base();
    let requests = burst(&cfg, &calib, 24, 150, 8);
    let report = serve(&cfg, &requests, &calib).expect("serves");
    let mut reg = qoa_obs::Registry::new();
    report.export(&mut reg);
    let text = reg.expose();
    let parsed = qoa_obs::parse_exposition(&text).expect("round-trips");
    let total: f64 = ["ok", "shed-admission", "shed-queue", "shed-breaker", "shed-deadline", "failed"]
        .iter()
        .map(|o| {
            parsed
                .get(&format!("qoa_serve_requests_total{{outcome=\"{o}\"}}"))
                .unwrap_or(0.0)
        })
        .sum();
    assert_eq!(total as u64, requests.len() as u64, "request counters must cover every request");
    assert!(text.contains("qoa_serve_latency_vcycles"), "latency histogram missing");
    assert!(text.contains("qoa_executor_cells_total"), "executor counters missing");
}

/// Replicates the CI `serve-smoke` loadgen invocation at the library
/// level and diffs against the committed golden. If this fails after an
/// intentional behavior change, regenerate with the command in
/// EXPERIMENTS.md ("Serving under load").
#[test]
fn golden_journal_matches_committed() {
    let mut cfg =
        ServeConfig::new(&["go", "float"], Scale::Tiny, Vec::new()).expect("workloads resolve");
    let calib = calibrate(&cfg).expect("calibrates");
    let rate = (calib.capacity_per_m(cfg.virtual_workers) * 130 / 100).max(1);
    cfg.tenants = standard_tenants(rate, calib.mean_cost_full);
    cfg.seed = 7;
    cfg.chaos = Some(ChaosConfig { seed: 11, points: 2 });
    let requests = generate(&ArrivalSpec {
        seed: 7,
        count: 120,
        rate_per_m: rate,
        tenants: cfg
            .tenants
            .iter()
            .map(|t| TenantMix { weight: t.weight, priority: t.priority, deadline: t.deadline })
            .collect(),
        workload_weights: vec![1; cfg.workloads.len()],
    });
    let report = serve(&cfg, &requests, &calib).expect("serves");
    let golden = include_str!("golden/serve_smoke.jsonl");
    assert_eq!(
        render_journal(&cfg, &report),
        golden,
        "journal drifted from tests/golden/serve_smoke.jsonl — regenerate if intentional"
    );
}
