//! Per-tenant admission control: token buckets over virtual time.
//!
//! All accounting is integer arithmetic in micro-tokens (one token =
//! [`MICRO`] units) against the server's virtual clock, so admission
//! decisions are bit-reproducible across hosts and job counts.

/// Micro-token scale: one admission token.
pub const MICRO: u64 = 1_000_000;

/// Token-bucket tuning for one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenBucketConfig {
    /// Bucket capacity in whole tokens (burst allowance).
    pub burst: u64,
    /// Refill rate: tokens granted per million virtual cycles.
    pub refill_per_m: u64,
}

impl Default for TokenBucketConfig {
    fn default() -> Self {
        TokenBucketConfig { burst: 8, refill_per_m: 64 }
    }
}

/// A deterministic token bucket. One request costs one token; a request
/// that finds the bucket empty is shed at admission (never queued).
#[derive(Debug, Clone)]
pub struct TokenBucket {
    cfg: TokenBucketConfig,
    /// Current fill in micro-tokens.
    units: u64,
    /// Virtual time of the last refill.
    last: u64,
}

impl TokenBucket {
    /// A bucket born full at virtual time `now`.
    pub fn new(cfg: TokenBucketConfig, now: u64) -> TokenBucket {
        TokenBucket { cfg, units: cfg.burst.saturating_mul(MICRO), last: now }
    }

    fn refill(&mut self, now: u64) {
        if now <= self.last {
            return;
        }
        let dt = now - self.last;
        self.last = now;
        // refill_per_m tokens per 1e6 vcycles == refill_per_m
        // micro-tokens per vcycle.
        let grant = dt.saturating_mul(self.cfg.refill_per_m);
        self.units = self.units.saturating_add(grant).min(self.cfg.burst.saturating_mul(MICRO));
    }

    /// Attempts to take one token at virtual time `now`.
    pub fn try_take(&mut self, now: u64) -> bool {
        self.refill(now);
        if self.units >= MICRO {
            self.units -= MICRO;
            true
        } else {
            false
        }
    }

    /// Current fill in whole tokens (floor), for metrics.
    pub fn tokens(&self) -> u64 {
        self.units / MICRO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_rate_limit() {
        let cfg = TokenBucketConfig { burst: 3, refill_per_m: MICRO }; // 1 token/vcycle
        let mut b = TokenBucket::new(cfg, 0);
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(!b.try_take(0), "burst exhausted");
        assert!(b.try_take(1), "one vcycle refills one token");
        assert!(!b.try_take(1));
    }

    #[test]
    fn refill_caps_at_burst() {
        let cfg = TokenBucketConfig { burst: 2, refill_per_m: MICRO };
        let mut b = TokenBucket::new(cfg, 0);
        assert!(b.try_take(1_000_000), "long idle");
        assert!(b.try_take(1_000_000));
        assert!(!b.try_take(1_000_000), "cap is burst, not idle time");
    }

    #[test]
    fn deterministic_across_clones() {
        let cfg = TokenBucketConfig::default();
        let mut a = TokenBucket::new(cfg, 0);
        let mut b = a.clone();
        for t in [0u64, 5, 9, 14, 100, 101, 5000] {
            assert_eq!(a.try_take(t), b.try_take(t));
        }
    }
}
