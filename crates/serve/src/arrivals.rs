//! Seeded open-loop arrival generation and the request-plan format.
//!
//! Arrivals are Poisson in the limit: a Bernoulli trial per virtual-time
//! quantum with success probability `rate * quantum`, implemented as one
//! integer threshold comparison per quantum. No floating point and no
//! `ln()` enters the schedule, so a plan is byte-identical across hosts,
//! libm versions, and job counts — the property the CI golden diff
//! relies on.

use qoa_core::QoaError;

/// One serving request, fully specified before execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Submission index (journal order).
    pub id: u64,
    /// Arrival on the virtual clock (micro-op cycles).
    pub arrival: u64,
    /// Index into the server's tenant table.
    pub tenant: usize,
    /// Index into the server's workload table.
    pub workload: usize,
    /// Admission priority (higher survives the shed gate longer).
    pub priority: i64,
    /// Relative deadline in virtual cycles from arrival.
    pub deadline: u64,
}

/// `SplitMix64`, the stack's standard seedable generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Per-tenant traffic profile the generator draws from.
#[derive(Debug, Clone)]
pub struct TenantMix {
    /// Relative share of generated traffic.
    pub weight: u32,
    /// Priority stamped on this tenant's requests.
    pub priority: i64,
    /// Relative deadline stamped on this tenant's requests (vcycles).
    pub deadline: u64,
}

/// Inputs to the open-loop generator.
#[derive(Debug, Clone)]
pub struct ArrivalSpec {
    /// RNG seed; same seed, same plan.
    pub seed: u64,
    /// Requests to generate.
    pub count: usize,
    /// Mean arrival rate: requests per million virtual cycles.
    pub rate_per_m: u64,
    /// Tenant profiles (weighted).
    pub tenants: Vec<TenantMix>,
    /// Workload weights, parallel to the server's workload table.
    pub workload_weights: Vec<u32>,
}

/// Generates `spec.count` open-loop arrivals, sorted by arrival time.
///
/// The inter-arrival process is geometric over quanta of
/// `max(1, mean/16)` vcycles, which converges to exponential
/// (memoryless) inter-arrivals while staying pure-integer.
pub fn generate(spec: &ArrivalSpec) -> Vec<Request> {
    let rate = spec.rate_per_m.max(1);
    let mean = (1_000_000 / rate).max(1); // mean inter-arrival, vcycles
    let quantum = (mean / 16).max(1);
    // P(arrival in one quantum) = quantum * rate / 1e6, as a u64
    // threshold against a raw 2^64 draw.
    let threshold =
        ((quantum as u128 * rate as u128 * (1u128 << 64)) / 1_000_000).min(u128::from(u64::MAX));
    let threshold = threshold as u64;

    let mut rng = SplitMix64::new(spec.seed);
    let tenant_total: u64 = spec.tenants.iter().map(|t| u64::from(t.weight.max(1))).sum();
    let workload_total: u64 =
        spec.workload_weights.iter().map(|w| u64::from((*w).max(1))).sum();

    let mut out = Vec::with_capacity(spec.count);
    let mut tick: u64 = 0;
    while out.len() < spec.count {
        tick += 1;
        if rng.next_u64() >= threshold {
            continue;
        }
        let arrival = tick * quantum;
        let tenant = weighted_pick(
            rng.next_u64() % tenant_total.max(1),
            spec.tenants.iter().map(|t| u64::from(t.weight.max(1))),
        );
        let workload = weighted_pick(
            rng.next_u64() % workload_total.max(1),
            spec.workload_weights.iter().map(|w| u64::from((*w).max(1))),
        );
        let profile = &spec.tenants[tenant];
        out.push(Request {
            id: out.len() as u64,
            arrival,
            tenant,
            workload,
            priority: profile.priority,
            deadline: profile.deadline,
        });
    }
    out
}

fn weighted_pick(mut roll: u64, weights: impl Iterator<Item = u64>) -> usize {
    let mut last = 0;
    for (i, w) in weights.enumerate() {
        last = i;
        if roll < w {
            return i;
        }
        roll -= w;
    }
    last
}

// ---- plan file format ------------------------------------------------------

/// Renders one request as a plan line (names resolved by the caller).
pub fn plan_line(req: &Request, tenant: &str, workload: &str) -> String {
    format!(
        "{{\"arrival\":{},\"tenant\":\"{}\",\"workload\":\"{}\",\"priority\":{},\"deadline\":{}}}",
        req.arrival, tenant, workload, req.priority, req.deadline
    )
}

fn bad_plan(lineno: usize, what: &str) -> QoaError {
    QoaError::Journal {
        context: format!("request plan line {lineno}: {what}"),
        source: std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed plan"),
    }
}

/// Extracts a raw JSON scalar (`"key":<value>`) from a single-line
/// object. Quoted values are returned without the quotes.
pub fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        let end = stripped.find('"')?;
        Some(&stripped[..end])
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

/// Parses a plan file body back into requests, resolving tenant and
/// workload names against the server's tables.
///
/// # Errors
///
/// [`QoaError::Journal`] on malformed lines or unknown names.
pub fn parse_plan(
    body: &str,
    tenant_names: &[String],
    workload_names: &[String],
) -> Result<Vec<Request>, QoaError> {
    let mut out = Vec::new();
    for (lineno, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let arrival = json_field(line, "arrival")
            .and_then(|v| v.parse::<u64>().ok())
            .ok_or_else(|| bad_plan(lineno + 1, "missing arrival"))?;
        let tenant_name =
            json_field(line, "tenant").ok_or_else(|| bad_plan(lineno + 1, "missing tenant"))?;
        let workload_name = json_field(line, "workload")
            .ok_or_else(|| bad_plan(lineno + 1, "missing workload"))?;
        let priority = json_field(line, "priority")
            .and_then(|v| v.parse::<i64>().ok())
            .ok_or_else(|| bad_plan(lineno + 1, "missing priority"))?;
        let deadline = json_field(line, "deadline")
            .and_then(|v| v.parse::<u64>().ok())
            .ok_or_else(|| bad_plan(lineno + 1, "missing deadline"))?;
        let tenant = tenant_names
            .iter()
            .position(|n| n == tenant_name)
            .ok_or_else(|| bad_plan(lineno + 1, "unknown tenant"))?;
        let workload = workload_names
            .iter()
            .position(|n| n == workload_name)
            .ok_or_else(|| bad_plan(lineno + 1, "unknown workload"))?;
        out.push(Request {
            id: out.len() as u64,
            arrival,
            tenant,
            workload,
            priority,
            deadline,
        });
    }
    out.sort_by_key(|r| (r.arrival, r.id));
    for (i, r) in out.iter_mut().enumerate() {
        r.id = i as u64;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(seed: u64) -> ArrivalSpec {
        ArrivalSpec {
            seed,
            count: 200,
            rate_per_m: 50,
            tenants: vec![
                TenantMix { weight: 3, priority: 0, deadline: 500_000 },
                TenantMix { weight: 1, priority: 5, deadline: 250_000 },
            ],
            workload_weights: vec![2, 1],
        }
    }

    #[test]
    fn same_seed_same_plan() {
        assert_eq!(generate(&spec(7)), generate(&spec(7)));
        assert_ne!(generate(&spec(7)), generate(&spec(8)));
    }

    #[test]
    fn arrivals_are_sorted_and_rate_is_plausible() {
        let reqs = generate(&spec(42));
        assert!(reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        let span = reqs.last().expect("nonempty").arrival;
        let measured_per_m = reqs.len() as u64 * 1_000_000 / span.max(1);
        assert!(
            (20..=100).contains(&measured_per_m),
            "rate 50/M requested, measured {measured_per_m}/M over {span}"
        );
    }

    #[test]
    fn plan_round_trips() {
        let tenants = vec!["free".to_string(), "pro".to_string()];
        let workloads = vec!["go".to_string(), "float".to_string()];
        let reqs = generate(&spec(3));
        let body: String = reqs
            .iter()
            .map(|r| plan_line(r, &tenants[r.tenant], &workloads[r.workload]) + "\n")
            .collect();
        let parsed = parse_plan(&body, &tenants, &workloads).expect("parses");
        assert_eq!(parsed, reqs);
    }

    #[test]
    fn unknown_tenant_is_a_typed_error() {
        let err = parse_plan(
            "{\"arrival\":1,\"tenant\":\"ghost\",\"workload\":\"go\",\"priority\":0,\"deadline\":10}",
            &["free".to_string()],
            &["go".to_string()],
        )
        .expect_err("unknown tenant");
        assert_eq!(err.kind(), "journal");
    }
}
