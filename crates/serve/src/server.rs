//! The serving daemon: admission, degradation ladder, bounded queues,
//! per-tenant breakers, and a deterministic virtual-time request journal.
//!
//! Time is virtual: the clock unit is one modeled micro-op ("vcycle"),
//! the same unit the attribution figures count. A request's service time
//! is the micro-op cost of its clean execution pass, and queueing is a
//! deterministic K-server simulation over those costs. Wall time is
//! measured and reported, but never enters an admission decision or the
//! journal — which is what makes `--seed` runs byte-identical across
//! hosts and `--jobs` settings, and lets chaos runs diff cleanly against
//! fault-free goldens.

use crate::admission::{TokenBucket, TokenBucketConfig};
use crate::arrivals::Request;
use crate::pool::{serve_one, ForkRun, Tier};
use qoa_chaos::FaultPlan;
use qoa_core::{
    cell_seed, run_supervised, BreakerCore, BreakerOptions, BreakerState, CellKey, CellVerdict,
    ExecutorOptions, ExecutorStats, QoaError, RetryPolicy, SupervisedCell,
};
use qoa_obs::Registry;
use qoa_workloads::{by_name, Scale};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// One registered workload: a named guest program at a fixed scale.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Registry name (also the journal label).
    pub name: String,
    /// Guest source at the configured scale.
    pub source: String,
}

/// One tenant's serving contract.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Tenant id used in journals and metrics.
    pub name: String,
    /// Admission priority of this tenant's requests.
    pub priority: i64,
    /// Relative request deadline in vcycles.
    pub deadline: u64,
    /// Admission quota.
    pub bucket: TokenBucketConfig,
    /// Traffic share for the load generator.
    pub weight: u32,
}

/// Queue-depth thresholds for the degradation ladder, in
/// request-equivalents of backlog (see [`serve`]).
#[derive(Debug, Clone, Copy)]
pub struct Ladder {
    /// Depth up to which requests get the full JIT tier.
    pub full_max: u64,
    /// Depth up to which requests get the JIT-degraded tier; beyond it
    /// the checked interpreter serves, and the bounded queue rejects.
    pub nojit_max: u64,
}

impl Ladder {
    /// The tier a window served at depth `depth` runs under.
    pub fn tier_for(&self, depth: u64) -> Tier {
        if depth <= self.full_max {
            Tier::Full
        } else if depth <= self.nojit_max {
            Tier::NoJit
        } else {
            Tier::Checked
        }
    }
}

/// Mid-request fault injection for the serving path.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Plan seed; each request derives its own plan from this and its
    /// journal key.
    pub seed: u64,
    /// Maximum fault points armed per request.
    pub points: usize,
}

/// Full serving configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Registered workloads.
    pub workloads: Vec<WorkloadSpec>,
    /// Tenant table.
    pub tenants: Vec<TenantConfig>,
    /// OS worker threads driving request execution.
    pub jobs: usize,
    /// Virtual servers in the queueing model.
    pub virtual_workers: usize,
    /// Requests batched per admission window.
    pub window: usize,
    /// Bounded-queue capacity in request-equivalents of backlog.
    pub max_queue: u64,
    /// Degradation thresholds.
    pub ladder: Ladder,
    /// Tenant circuit-breaker tuning.
    pub breaker: BreakerOptions,
    /// Executor seed (retry jitter etc.; results don't depend on it).
    pub seed: u64,
    /// Optional fault injection.
    pub chaos: Option<ChaosConfig>,
}

impl ServeConfig {
    /// A config serving `names` at `scale` with the given tenants and
    /// the default knobs (2 jobs, 4 virtual workers, window 16,
    /// queue 48).
    ///
    /// # Errors
    ///
    /// Unknown workload names.
    pub fn new(
        names: &[&str],
        scale: Scale,
        tenants: Vec<TenantConfig>,
    ) -> Result<ServeConfig, QoaError> {
        let mut workloads = Vec::with_capacity(names.len());
        for name in names {
            let w = by_name(name).ok_or_else(|| QoaError::Journal {
                context: format!("serve config: unknown workload '{name}'"),
                source: std::io::Error::new(std::io::ErrorKind::NotFound, "workload"),
            })?;
            workloads.push(WorkloadSpec { name: (*name).to_string(), source: w.source(scale) });
        }
        let window = 16usize;
        let virtual_workers = 4usize;
        let max_queue = 48u64;
        Ok(ServeConfig {
            workloads,
            tenants,
            jobs: 2,
            virtual_workers,
            window,
            max_queue,
            ladder: Ladder {
                full_max: (window + virtual_workers) as u64,
                nojit_max: (window + virtual_workers) as u64 + max_queue / 2,
            },
            breaker: BreakerOptions::default(),
            seed: 1,
            chaos: None,
        })
    }

    /// Tenant names, in table order.
    pub fn tenant_names(&self) -> Vec<String> {
        self.tenants.iter().map(|t| t.name.clone()).collect()
    }

    /// Workload names, in table order.
    pub fn workload_names(&self) -> Vec<String> {
        self.workloads.iter().map(|w| w.name.clone()).collect()
    }
}

/// The standard three-tenant mix: a weight-6 free tier on a tight
/// quota, a weight-3 pro tier, and a weight-1 enterprise tier with the
/// largest burst and the most headroom. Quotas are sized against the
/// offered rate so that a 1x run admits nearly everything and a 2x run
/// clips the free tier first.
pub fn standard_tenants(rate_per_m: u64, mean_cost: u64) -> Vec<TenantConfig> {
    let base = mean_cost.max(1);
    vec![
        TenantConfig {
            name: "free".into(),
            priority: 0,
            deadline: base * 4,
            bucket: TokenBucketConfig {
                burst: 4,
                refill_per_m: (rate_per_m * 9 / 10).max(1),
            },
            weight: 6,
        },
        TenantConfig {
            name: "pro".into(),
            priority: 4,
            deadline: base * 8,
            bucket: TokenBucketConfig {
                burst: 8,
                refill_per_m: (rate_per_m * 9 / 20).max(1),
            },
            weight: 3,
        },
        TenantConfig {
            name: "enterprise".into(),
            priority: 8,
            deadline: base * 16,
            bucket: TokenBucketConfig {
                burst: 16,
                refill_per_m: (rate_per_m * 3 / 20).max(1),
            },
            weight: 1,
        },
    ]
}

// ---- calibration -----------------------------------------------------------

/// Measured baseline for one `(workload, tier)` pair, taken from a
/// fault-free fork at prewarm time.
#[derive(Debug, Clone)]
pub struct CalibEntry {
    /// Micro-op cost (virtual service cycles).
    pub cost: u64,
    /// Guest bytecodes executed.
    pub steps: u64,
    /// Expected `result` global.
    pub result: Option<String>,
    /// Expected stdout hash.
    pub out_hash: u64,
    /// Wall time of the calibration fork (reporting only).
    pub wall_nanos: u64,
}

/// Calibration table for every registered `(workload, tier)` pair.
#[derive(Debug, Clone)]
pub struct Calibration {
    entries: BTreeMap<(usize, Tier), CalibEntry>,
    /// Mean full-tier cost across workloads: the capacity unit.
    pub mean_cost_full: u64,
}

impl Calibration {
    /// The entry for `(workload index, tier)`.
    pub fn entry(&self, workload: usize, tier: Tier) -> Option<&CalibEntry> {
        self.entries.get(&(workload, tier))
    }

    /// Estimated sustainable throughput in requests per million
    /// vcycles for `workers` virtual servers at the full tier.
    pub fn capacity_per_m(&self, workers: usize) -> u64 {
        (workers as u64).saturating_mul(1_000_000) / self.mean_cost_full.max(1)
    }
}

/// Pre-warms and calibrates every `(workload, tier)` pair on the
/// calling thread: one fault-free fork each, recording cost, steps, and
/// the expected answer, and cross-checking that all three tiers agree
/// on every workload's result.
///
/// # Errors
///
/// Compile/verify errors, or a cross-tier result divergence (which
/// would make the degradation ladder observable to clients).
pub fn calibrate(cfg: &ServeConfig) -> Result<Calibration, QoaError> {
    let mut entries = BTreeMap::new();
    let mut full_total = 0u64;
    for (wi, w) in cfg.workloads.iter().enumerate() {
        let mut baseline: Option<(Option<String>, u64)> = None;
        for tier in Tier::ALL {
            let t0 = Instant::now();
            let run = serve_one(&w.source, tier, 0, None)?;
            let wall_nanos = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            match &baseline {
                None => baseline = Some((run.result.clone(), run.out_hash)),
                Some((result, out_hash)) => {
                    if *result != run.result || *out_hash != run.out_hash {
                        return Err(QoaError::Guest {
                            message: format!(
                                "tier divergence on '{}': {} answers {:?}, full answers {:?}",
                                w.name,
                                tier.name(),
                                run.result,
                                result
                            ),
                            line: 0,
                        });
                    }
                }
            }
            if tier == Tier::Full {
                full_total += run.cost;
            }
            entries.insert(
                (wi, tier),
                CalibEntry {
                    cost: run.cost,
                    steps: run.steps,
                    result: run.result,
                    out_hash: run.out_hash,
                    wall_nanos,
                },
            );
        }
    }
    let mean_cost_full = full_total / cfg.workloads.len().max(1) as u64;
    Ok(Calibration { entries, mean_cost_full })
}

/// Translates a relative deadline into a guest-bytecode fuel cap using
/// the calibrated steps-per-vcycle ratio, plus a small slack so the cap
/// only fires on genuinely over-deadline work. Returns 0 (unlimited)
/// when the calibration is degenerate.
pub fn fuel_cap(deadline: u64, entry: &CalibEntry) -> u64 {
    if entry.cost == 0 || entry.steps == 0 {
        return 0;
    }
    let steps = (u128::from(deadline) * u128::from(entry.steps)) / u128::from(entry.cost);
    (steps.min(u128::from(u64::MAX - 1024)) as u64).saturating_add(1024)
}

// ---- outcomes and records --------------------------------------------------

/// Why a request was shed (declined without a result, by design —
/// never a wrong or partial answer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedCause {
    /// Tenant token bucket was empty at arrival.
    Admission,
    /// The bounded queue was full; lowest priority went first.
    Queue,
    /// The tenant's circuit breaker was open.
    Breaker,
    /// The deadline expired in queue or the deadline-derived fuel cap
    /// tripped mid-execution.
    Deadline,
}

impl ShedCause {
    /// Stable journal/metrics label.
    pub fn name(self) -> &'static str {
        match self {
            ShedCause::Admission => "shed-admission",
            ShedCause::Queue => "shed-queue",
            ShedCause::Breaker => "shed-breaker",
            ShedCause::Deadline => "shed-deadline",
        }
    }
}

/// Final disposition of one request.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Served within deadline; the response payload is `result`.
    Ok {
        /// Virtual service start.
        start: u64,
        /// Virtual completion.
        done: u64,
        /// Service cost in vcycles.
        cost: u64,
        /// Guest bytecodes of the clean pass.
        steps: u64,
        /// Response payload (the `result` global).
        result: Option<String>,
        /// Guest stdout hash.
        out_hash: u64,
        /// Chaos faults recovered while serving.
        faults: u64,
        /// Snapshot restores consumed.
        restores: u64,
    },
    /// Declined by an overload or health gate.
    Shed {
        /// Which gate.
        cause: ShedCause,
    },
    /// A hard failure: organic guest error or lost worker. The serving
    /// invariant is that overload alone never produces these.
    Failed {
        /// [`QoaError::kind`] tag.
        kind: String,
        /// Rendered error.
        message: String,
    },
}

impl Outcome {
    /// Stable journal/metrics label.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Ok { .. } => "ok",
            Outcome::Shed { cause } => cause.name(),
            Outcome::Failed { .. } => "failed",
        }
    }
}

/// One journal row: the request plus its disposition.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// Request id (journal order).
    pub id: u64,
    /// Tenant name.
    pub tenant: String,
    /// Workload name.
    pub workload: String,
    /// Tier its admission window ran under.
    pub tier: Tier,
    /// Virtual arrival.
    pub arrival: u64,
    /// Admission priority.
    pub priority: i64,
    /// Relative deadline.
    pub deadline: u64,
    /// Disposition.
    pub outcome: Outcome,
}

// ---- the serve loop --------------------------------------------------------

/// Everything one serving run produced.
#[derive(Debug)]
pub struct ServeReport {
    /// Per-request records, in request-id order.
    pub records: Vec<RequestRecord>,
    /// Windows served per tier (`full`, `nojit`, `checked`).
    pub tier_windows: [u64; 3],
    /// Deepest queue depth observed (request-equivalents).
    pub depth_peak: u64,
    /// Executor counters summed over all windows.
    pub exec: ExecutorStats,
    /// Tenant breaker transitions into open.
    pub breaker_opened: u64,
    /// Tenant breaker transitions into half-open.
    pub breaker_half_opened: u64,
    /// Tenant breaker transitions into closed.
    pub breaker_closed: u64,
    /// Wall time of the whole run (reporting only).
    pub wall: Duration,
}

fn fold_stats(total: &mut ExecutorStats, s: &ExecutorStats) {
    total.jobs = total.jobs.max(s.jobs);
    total.cells_submitted += s.cells_submitted;
    total.cells_ok += s.cells_ok;
    total.cells_failed += s.cells_failed;
    total.cells_shed_budget += s.cells_shed_budget;
    total.cells_shed_breaker += s.cells_shed_breaker;
    total.cells_lost += s.cells_lost;
    total.attempts += s.attempts;
    total.retries += s.retries;
    total.breaker_opened += s.breaker_opened;
    total.breaker_half_opened += s.breaker_half_opened;
    total.breaker_closed += s.breaker_closed;
    total.queue_depth_peak = total.queue_depth_peak.max(s.queue_depth_peak);
    total.speculative_discards += s.speculative_discards;
    total.redispatches += s.redispatches;
}

fn invalid(context: String) -> QoaError {
    QoaError::Journal {
        context,
        source: std::io::Error::new(std::io::ErrorKind::InvalidInput, "serve config"),
    }
}

/// Serves `requests` (sorted by arrival) under `cfg`, returning the
/// full per-request report. Deterministic for a fixed `(cfg, requests,
/// calibration)` triple regardless of `cfg.jobs` or the host.
///
/// Lifecycle per admission window of `cfg.window` requests:
///
/// 1. **Depth**: backlog beyond the window's first arrival, in
///    request-equivalents of the calibrated mean cost, picks the
///    service tier via the ladder and the free queue slots.
/// 2. **Gates**: open tenant breaker → shed; empty token bucket →
///    shed. Survivors are submitted to the supervised executor with
///    the free slots as the admission budget, so overload sheds
///    lowest-priority-first.
/// 3. **Execution**: each admitted request forks the pre-warmed
///    snapshot on a worker (chaos plan armed when configured), capped
///    at its deadline-derived fuel.
/// 4. **Commit** (submission order): place on the least-loaded virtual
///    server; a request that would start past its deadline is dropped
///    without charging the server, one that finishes past it is
///    charged but still shed — the client never sees a late or
///    partial result. Organic guest errors fail the request and
///    advance the tenant's breaker.
///
/// # Errors
///
/// Configuration errors (empty tables, out-of-range indices). Request
/// failures are reported per-record, never as an `Err`.
pub fn serve(
    cfg: &ServeConfig,
    requests: &[Request],
    calib: &Calibration,
) -> Result<ServeReport, QoaError> {
    if cfg.workloads.is_empty() {
        return Err(invalid("serve: no workloads registered".into()));
    }
    if cfg.tenants.is_empty() {
        return Err(invalid("serve: no tenants configured".into()));
    }
    if cfg.virtual_workers == 0 || cfg.window == 0 {
        return Err(invalid("serve: virtual_workers and window must be nonzero".into()));
    }
    for req in requests {
        if req.tenant >= cfg.tenants.len() || req.workload >= cfg.workloads.len() {
            return Err(invalid(format!("serve: request {} references unknown tables", req.id)));
        }
    }

    let wall_start = Instant::now();
    let mean_cost = calib.mean_cost_full.max(1);
    let first_arrival = requests.first().map_or(0, |r| r.arrival);
    let mut worker_free = vec![first_arrival; cfg.virtual_workers];
    let mut buckets: Vec<TokenBucket> =
        cfg.tenants.iter().map(|t| TokenBucket::new(t.bucket, first_arrival)).collect();
    let mut breakers: Vec<BreakerCore> =
        cfg.tenants.iter().map(|_| BreakerCore::new(cfg.breaker.clone())).collect();

    let mut report = ServeReport {
        records: Vec::with_capacity(requests.len()),
        tier_windows: [0; 3],
        depth_peak: 0,
        exec: ExecutorStats::default(),
        breaker_opened: 0,
        breaker_half_opened: 0,
        breaker_closed: 0,
        wall: Duration::ZERO,
    };
    let note = |report: &mut ServeReport, t: Option<BreakerState>| match t {
        Some(BreakerState::Open) => report.breaker_opened += 1,
        Some(BreakerState::HalfOpen) => report.breaker_half_opened += 1,
        Some(BreakerState::Closed) => report.breaker_closed += 1,
        None => {}
    };

    let mut start_idx = 0;
    while start_idx < requests.len() {
        let end = (start_idx + cfg.window).min(requests.len());
        let window = &requests[start_idx..end];
        start_idx = end;
        let t0 = window[0].arrival;

        let backlog: u64 = worker_free.iter().map(|&f| f.saturating_sub(t0)).sum();
        let depth = backlog / mean_cost + window.len() as u64;
        report.depth_peak = report.depth_peak.max(depth);
        let tier = cfg.ladder.tier_for(depth);
        report.tier_windows[match tier {
            Tier::Full => 0,
            Tier::NoJit => 1,
            Tier::Checked => 2,
        }] += 1;
        let slots = cfg.max_queue.saturating_sub(backlog / mean_cost);

        // Gate pass: breaker, then quota. Survivors go to the executor.
        let mut outcomes: Vec<Option<Outcome>> = vec![None; window.len()];
        let mut admitted: Vec<(usize, &Request)> = Vec::with_capacity(window.len());
        for (pos, req) in window.iter().enumerate() {
            if breakers[req.tenant].state() == BreakerState::Open {
                let t = breakers[req.tenant].on_shed();
                note(&mut report, t);
                outcomes[pos] = Some(Outcome::Shed { cause: ShedCause::Breaker });
                continue;
            }
            if !buckets[req.tenant].try_take(req.arrival) {
                outcomes[pos] = Some(Outcome::Shed { cause: ShedCause::Admission });
                continue;
            }
            admitted.push((pos, req));
        }

        let mut cells = Vec::with_capacity(admitted.len());
        for (_, req) in &admitted {
            let w = &cfg.workloads[req.workload];
            let entry = calib.entry(req.workload, tier).ok_or_else(|| {
                invalid(format!("serve: no calibration for ({}, {})", w.name, tier.name()))
            })?;
            let fuel = fuel_cap(req.deadline, entry);
            let key = CellKey::new(
                w.name.clone(),
                cfg.tenants[req.tenant].name.clone(),
                "request",
                req.id.to_string(),
            );
            let plan = cfg.chaos.map(|c| {
                FaultPlan::seeded(
                    cell_seed(c.seed, &key),
                    entry.steps.max(1),
                    c.points,
                    tier.fault_kinds(),
                )
            });
            let source = w.source.clone();
            cells.push(
                SupervisedCell::new(key, move |_| serve_one(&source, tier, fuel, plan.as_ref()))
                    .with_priority(req.priority)
                    .with_cost(1),
            );
        }

        let mut xopts = ExecutorOptions::new(cfg.jobs.max(1));
        xopts.seed = cfg.seed;
        xopts.retry = RetryPolicy::none();
        // Tenant breakers live in this loop across windows; the
        // executor's per-batch breakers are parked out of the way.
        xopts.breaker = BreakerOptions { failure_threshold: u32::MAX, cooldown_sheds: u32::MAX };
        xopts.budget = Some(slots);
        let (committed, stats) = run_supervised(cells, &xopts);
        fold_stats(&mut report.exec, &stats);

        for ((pos, req), cell) in admitted.iter().zip(committed) {
            let outcome = match cell.verdict {
                CellVerdict::Shed { .. } => Outcome::Shed { cause: ShedCause::Queue },
                CellVerdict::Ok { value: run, .. } => {
                    let t = breakers[req.tenant].on_success();
                    note(&mut report, t);
                    place(&mut worker_free, req, run)
                }
                CellVerdict::Failed { kind, message, .. } => {
                    if kind == "fuel" {
                        // The deadline-derived fuel cap tripped: the
                        // request could not finish inside its deadline.
                        // Shed, never a partial result; the tenant's
                        // breaker is not advanced for load effects.
                        Outcome::Shed { cause: ShedCause::Deadline }
                    } else {
                        let t = breakers[req.tenant].on_failure();
                        note(&mut report, t);
                        Outcome::Failed { kind, message }
                    }
                }
                CellVerdict::Lost { .. } => {
                    let t = breakers[req.tenant].on_failure();
                    note(&mut report, t);
                    Outcome::Failed { kind: "lost".into(), message: "worker lost".into() }
                }
            };
            outcomes[*pos] = Some(outcome);
        }

        for (pos, req) in window.iter().enumerate() {
            let outcome = outcomes[pos].take().unwrap_or(Outcome::Failed {
                kind: "journal".into(),
                message: "request fell through the commit pass".into(),
            });
            report.records.push(RequestRecord {
                id: req.id,
                tenant: cfg.tenants[req.tenant].name.clone(),
                workload: cfg.workloads[req.workload].name.clone(),
                tier,
                arrival: req.arrival,
                priority: req.priority,
                deadline: req.deadline,
                outcome,
            });
        }
    }

    report.wall = wall_start.elapsed();
    Ok(report)
}

/// Places a completed execution on the least-loaded virtual server and
/// applies the deadline policy.
fn place(worker_free: &mut [u64], req: &Request, run: ForkRun) -> Outcome {
    let mut widx = 0;
    for (i, &free) in worker_free.iter().enumerate() {
        if free < worker_free[widx] {
            widx = i;
        }
    }
    let start = worker_free[widx].max(req.arrival);
    let cutoff = req.arrival + req.deadline;
    if start > cutoff {
        // Expired while queued: dropped at dequeue, server not charged.
        return Outcome::Shed { cause: ShedCause::Deadline };
    }
    let done = start + run.cost;
    worker_free[widx] = done;
    if done > cutoff {
        // Started in time but overran: the server burnt the cycles,
        // the client still gets a shed, not a late answer.
        return Outcome::Shed { cause: ShedCause::Deadline };
    }
    Outcome::Ok {
        start,
        done,
        cost: run.cost,
        steps: run.steps,
        result: run.result,
        out_hash: run.out_hash,
        faults: run.faults,
        restores: run.restores,
    }
}

// ---- report accessors ------------------------------------------------------

impl ServeReport {
    /// Requests with the given outcome label.
    pub fn count(&self, label: &str) -> u64 {
        self.records.iter().filter(|r| r.outcome.label() == label).count() as u64
    }

    /// Hard failures (never from overload alone).
    pub fn failed(&self) -> u64 {
        self.count("failed")
    }

    /// Every shed, across all four causes.
    pub fn shed_total(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Shed { .. }))
            .count() as u64
    }

    /// Chaos faults recovered while serving.
    pub fn faults(&self) -> u64 {
        self.records
            .iter()
            .map(|r| match &r.outcome {
                Outcome::Ok { faults, .. } => *faults,
                _ => 0,
            })
            .sum()
    }

    /// Snapshot restores consumed by recovery.
    pub fn restores(&self) -> u64 {
        self.records
            .iter()
            .map(|r| match &r.outcome {
                Outcome::Ok { restores, .. } => *restores,
                _ => 0,
            })
            .sum()
    }

    /// Latencies of served requests, sorted ascending (vcycles).
    pub fn ok_latencies(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .records
            .iter()
            .filter_map(|r| match &r.outcome {
                Outcome::Ok { start: _, done, .. } => Some(done - r.arrival),
                _ => None,
            })
            .collect();
        v.sort_unstable();
        v
    }

    /// The `q`-per-mille percentile of served latency (e.g. 500, 990,
    /// 999), or 0 when nothing was served.
    pub fn latency_permille(&self, q: u64) -> u64 {
        let v = self.ok_latencies();
        if v.is_empty() {
            return 0;
        }
        let idx = ((v.len() as u64 - 1) * q / 1000) as usize;
        v[idx.min(v.len() - 1)]
    }

    /// Virtual span of the run: last completion minus first arrival.
    pub fn virtual_span(&self) -> u64 {
        let first = self.records.first().map_or(0, |r| r.arrival);
        let last = self
            .records
            .iter()
            .filter_map(|r| match &r.outcome {
                Outcome::Ok { done, .. } => Some(*done),
                _ => None,
            })
            .max()
            .unwrap_or(first);
        last.saturating_sub(first)
    }

    /// Exports serving counters (and the folded executor counters)
    /// into a metrics registry for Prometheus exposition.
    pub fn export(&self, reg: &mut Registry) {
        for label in
            ["ok", "shed-admission", "shed-queue", "shed-breaker", "shed-deadline", "failed"]
        {
            let id = reg.labeled_counter(
                "qoa_serve_requests_total",
                "Serving requests by final outcome",
                "outcome",
                label,
            );
            reg.add(id, self.count(label));
        }
        let hist = reg.histogram(
            "qoa_serve_latency_vcycles",
            "Served request latency in virtual cycles",
        );
        for lat in self.ok_latencies() {
            reg.observe(hist, lat);
        }
        for (i, tier) in Tier::ALL.iter().enumerate() {
            let id = reg.labeled_counter(
                "qoa_serve_windows_total",
                "Admission windows by service tier",
                "tier",
                tier.name(),
            );
            reg.add(id, self.tier_windows[i]);
        }
        let depth =
            reg.gauge("qoa_serve_queue_depth_peak", "Deepest observed queue depth (requests)");
        reg.set(depth, self.depth_peak as f64);
        let faults =
            reg.counter("qoa_serve_faults_recovered_total", "Chaos faults recovered in-flight");
        reg.add(faults, self.faults());
        let restores =
            reg.counter("qoa_serve_snapshot_restores_total", "Snapshot restores consumed");
        reg.add(restores, self.restores());
        for (state, n) in [
            ("open", self.breaker_opened),
            ("half-open", self.breaker_half_opened),
            ("closed", self.breaker_closed),
        ] {
            let id = reg.labeled_counter(
                "qoa_serve_breaker_transitions_total",
                "Tenant breaker transitions",
                "to",
                state,
            );
            reg.add(id, n);
        }
        self.exec.export(reg);
    }

    /// Human-readable run summary.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let span = self.virtual_span();
        let ok = self.count("ok");
        s.push_str(&format!(
            "requests {} over {} vcycles: ok {} | shed admission {} queue {} breaker {} deadline {} | failed {}\n",
            self.records.len(),
            span,
            ok,
            self.count("shed-admission"),
            self.count("shed-queue"),
            self.count("shed-breaker"),
            self.count("shed-deadline"),
            self.failed(),
        ));
        s.push_str(&format!(
            "tiers: full {} / nojit {} / checked {} windows; peak depth {}\n",
            self.tier_windows[0], self.tier_windows[1], self.tier_windows[2], self.depth_peak
        ));
        s.push_str(&format!(
            "latency vcycles: p50 {} p99 {} p999 {} max {}\n",
            self.latency_permille(500),
            self.latency_permille(990),
            self.latency_permille(999),
            self.ok_latencies().last().copied().unwrap_or(0),
        ));
        if span > 0 {
            s.push_str(&format!(
                "throughput: {} served per M vcycles (capacity unit)\n",
                ok.saturating_mul(1_000_000) / span.max(1)
            ));
        }
        s.push_str(&format!(
            "chaos: {} faults recovered via {} snapshot restores\n",
            self.faults(),
            self.restores()
        ));
        s.push_str(&format!(
            "executor: {} attempts, {} budget sheds; tenant breaker transitions open {} half {} closed {}\n",
            self.exec.attempts,
            self.exec.cells_shed_budget,
            self.breaker_opened,
            self.breaker_half_opened,
            self.breaker_closed
        ));
        s.push_str(&format!("wall: {:.1} ms\n", self.wall.as_secs_f64() * 1e3));
        s
    }
}

// ---- journal ---------------------------------------------------------------

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn opt_str(v: &Option<String>) -> String {
    match v {
        Some(s) => format!("\"{}\"", esc(s)),
        None => "null".into(),
    }
}

/// Renders one journal row. Keys are in a fixed order; the
/// chaos-bookkeeping counters are always the trailing pair so
/// [`strip_fault_counters`] can reduce a line to its client-visible
/// core.
pub fn journal_line(rec: &RequestRecord) -> String {
    let (outcome, start, done, latency, cost, steps, result, out_hash, error, faults, restores) =
        match &rec.outcome {
            Outcome::Ok { start, done, cost, steps, result, out_hash, faults, restores } => (
                "ok".to_string(),
                start.to_string(),
                done.to_string(),
                (done - rec.arrival).to_string(),
                cost.to_string(),
                steps.to_string(),
                opt_str(result),
                format!("\"0x{out_hash:016x}\""),
                "null".to_string(),
                *faults,
                *restores,
            ),
            Outcome::Shed { cause } => (
                cause.name().to_string(),
                "null".into(),
                "null".into(),
                "null".into(),
                "null".into(),
                "null".into(),
                "null".into(),
                "null".into(),
                "null".into(),
                0,
                0,
            ),
            Outcome::Failed { kind, message } => (
                "failed".to_string(),
                "null".into(),
                "null".into(),
                "null".into(),
                "null".into(),
                "null".into(),
                "null".into(),
                "null".into(),
                format!("\"{}: {}\"", esc(kind), esc(message)),
                0,
                0,
            ),
        };
    format!(
        "{{\"id\":{},\"tenant\":\"{}\",\"workload\":\"{}\",\"tier\":\"{}\",\"arrival\":{},\"priority\":{},\"deadline\":{},\"outcome\":\"{}\",\"start\":{},\"done\":{},\"latency\":{},\"cost\":{},\"steps\":{},\"result\":{},\"out_hash\":{},\"error\":{},\"faults\":{},\"restores\":{}}}",
        rec.id,
        esc(&rec.tenant),
        esc(&rec.workload),
        rec.tier.name(),
        rec.arrival,
        rec.priority,
        rec.deadline,
        outcome,
        start,
        done,
        latency,
        cost,
        steps,
        result,
        out_hash,
        error,
        faults,
        restores,
    )
}

/// Drops the trailing chaos counters (`faults`, `restores`) from a
/// journal line, leaving exactly the client-visible fields. A chaos run
/// and a fault-free run of the same admitted request set are
/// byte-identical under this projection.
pub fn strip_fault_counters(line: &str) -> String {
    match line.rfind(",\"faults\":") {
        Some(idx) => format!("{}}}", &line[..idx]),
        None => line.to_string(),
    }
}

fn fingerprint(cfg: &ServeConfig) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |s: &str| {
        for b in s.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for w in &cfg.workloads {
        mix(&w.name);
        mix(&w.source);
    }
    for t in &cfg.tenants {
        mix(&t.name);
        mix(&format!(
            "{}/{}/{}/{}/{}",
            t.priority, t.deadline, t.bucket.burst, t.bucket.refill_per_m, t.weight
        ));
    }
    mix(&format!(
        "vw={}/win={}/q={}/full={}/nojit={}/seed={}",
        cfg.virtual_workers,
        cfg.window,
        cfg.max_queue,
        cfg.ladder.full_max,
        cfg.ladder.nojit_max,
        cfg.seed
    ));
    h
}

/// Renders the full deterministic request journal: a header line (schema
/// version, config fingerprint, seeds) followed by one row per request
/// in id order. Contains no wall-clock values.
pub fn render_journal(cfg: &ServeConfig, report: &ServeReport) -> String {
    let chaos = match cfg.chaos {
        Some(c) => c.seed.to_string(),
        None => "null".into(),
    };
    let mut out = format!(
        "{{\"v\":1,\"kind\":\"qoa-serve-journal\",\"fingerprint\":\"0x{:016x}\",\"seed\":{},\"chaos_seed\":{},\"requests\":{}}}\n",
        fingerprint(cfg),
        cfg.seed,
        chaos,
        report.records.len()
    );
    for rec in &report.records {
        out.push_str(&journal_line(rec));
        out.push('\n');
    }
    out
}
