//! `qoa-loadgen`: seeded open-loop load generator for `qoa-serve`.
//!
//! Calibrates the registered workloads, derives an offered rate from
//! the estimated capacity and `--load-pct`, generates a Poisson arrival
//! plan over the standard tenant mix, drives the serving loop, and
//! reports throughput and p50/p99/p999 plus shed/breaker counters.
//! Everything except wall-clock lines is deterministic given `--seed`
//! (and `--chaos-seed`): rerunning writes a byte-identical journal.

use qoa_core::benchsnap::{write_bench_json, BenchEntry};
use qoa_obs::Registry;
use qoa_serve::{
    calibrate, generate, plan_line, render_journal, serve, standard_tenants, ArrivalSpec,
    ChaosConfig, ServeConfig, TenantMix, Tier,
};
use qoa_workloads::Scale;
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    workloads: Vec<String>,
    scale: Scale,
    requests: usize,
    load_pct: u64,
    rate_per_m: Option<u64>,
    seed: u64,
    chaos_seed: Option<u64>,
    chaos_points: usize,
    jobs: usize,
    virtual_workers: usize,
    window: usize,
    max_queue: u64,
    journal: Option<PathBuf>,
    metrics: Option<PathBuf>,
    plan_out: Option<PathBuf>,
    bench_out: Option<PathBuf>,
    deny_failures: bool,
    quiet: bool,
}

const USAGE: &str = "usage: qoa-loadgen [flags]\n\
  --workloads A,B,C   registered workloads (default go,float,richards)\n\
  --scale S           tiny|small|full (default tiny)\n\
  --requests N        arrivals to generate (default 400)\n\
  --load-pct P        offered load as % of estimated capacity (default 100; 200 = 2x)\n\
  --rate-per-m R      explicit rate (requests per M vcycles; overrides --load-pct)\n\
  --seed N            arrival/executor seed (default 1)\n\
  --chaos-seed N      arm per-request fault plans from this seed\n\
  --chaos-points N    max fault points per request (default 2)\n\
  --jobs N            executor worker threads (default 2)\n\
  --virtual-workers N virtual servers in the queue model (default 4)\n\
  --window N          admission window (default 16)\n\
  --max-queue N       bounded queue, request-equivalents (default 48)\n\
  --journal PATH      write the deterministic request journal\n\
  --metrics PATH      write Prometheus exposition\n\
  --plan-out PATH     write the generated arrival plan (qoa-serve input)\n\
  --bench-out DIR     write BENCH_serve.json under DIR\n\
  --deny-failures     exit 3 if any request hard-fails (CI gate)\n\
  --quiet             suppress the run summary\n";

fn parse() -> Result<Cli, String> {
    let mut cli = Cli {
        workloads: vec!["go".into(), "float".into(), "richards".into()],
        scale: Scale::Tiny,
        requests: 400,
        load_pct: 100,
        rate_per_m: None,
        seed: 1,
        chaos_seed: None,
        chaos_points: 2,
        jobs: 2,
        virtual_workers: 4,
        window: 16,
        max_queue: 48,
        journal: None,
        metrics: None,
        plan_out: None,
        bench_out: None,
        deny_failures: false,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |name: &str| {
            args.next().ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--workloads" => {
                cli.workloads = val("--workloads")?.split(',').map(str::to_string).collect();
            }
            "--scale" => {
                cli.scale = match val("--scale")?.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    other => return Err(format!("unknown scale '{other}'")),
                };
            }
            "--requests" => cli.requests = num(&val("--requests")?)? as usize,
            "--load-pct" => cli.load_pct = num(&val("--load-pct")?)?,
            "--rate-per-m" => cli.rate_per_m = Some(num(&val("--rate-per-m")?)?),
            "--seed" => cli.seed = num(&val("--seed")?)?,
            "--chaos-seed" => cli.chaos_seed = Some(num(&val("--chaos-seed")?)?),
            "--chaos-points" => cli.chaos_points = num(&val("--chaos-points")?)? as usize,
            "--jobs" => cli.jobs = num(&val("--jobs")?)? as usize,
            "--virtual-workers" => cli.virtual_workers = num(&val("--virtual-workers")?)? as usize,
            "--window" => cli.window = num(&val("--window")?)? as usize,
            "--max-queue" => cli.max_queue = num(&val("--max-queue")?)?,
            "--journal" => cli.journal = Some(PathBuf::from(val("--journal")?)),
            "--metrics" => cli.metrics = Some(PathBuf::from(val("--metrics")?)),
            "--plan-out" => cli.plan_out = Some(PathBuf::from(val("--plan-out")?)),
            "--bench-out" => cli.bench_out = Some(PathBuf::from(val("--bench-out")?)),
            "--deny-failures" => cli.deny_failures = true,
            "--quiet" => cli.quiet = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    Ok(cli)
}

fn num(s: &str) -> Result<u64, String> {
    s.parse::<u64>().map_err(|_| format!("not a number: '{s}'"))
}

fn run(cli: &Cli) -> Result<ExitCode, String> {
    let names: Vec<&str> = cli.workloads.iter().map(String::as_str).collect();
    let mut cfg = ServeConfig::new(&names, cli.scale, Vec::new()).map_err(|e| e.to_string())?;
    cfg.jobs = cli.jobs;
    cfg.virtual_workers = cli.virtual_workers;
    cfg.window = cli.window;
    cfg.max_queue = cli.max_queue;
    cfg.ladder.full_max = (cli.window + cli.virtual_workers) as u64;
    cfg.ladder.nojit_max = cfg.ladder.full_max + cli.max_queue / 2;
    cfg.seed = cli.seed;
    cfg.chaos = cli.chaos_seed.map(|seed| ChaosConfig { seed, points: cli.chaos_points });

    let calib = calibrate(&cfg).map_err(|e| e.to_string())?;
    let capacity = calib.capacity_per_m(cfg.virtual_workers);
    let rate = cli.rate_per_m.unwrap_or_else(|| (capacity * cli.load_pct / 100).max(1));
    cfg.tenants = standard_tenants(rate, calib.mean_cost_full);

    let spec = ArrivalSpec {
        seed: cli.seed,
        count: cli.requests,
        rate_per_m: rate,
        tenants: cfg
            .tenants
            .iter()
            .map(|t| TenantMix { weight: t.weight, priority: t.priority, deadline: t.deadline })
            .collect(),
        workload_weights: vec![1; cfg.workloads.len()],
    };
    let requests = generate(&spec);

    if !cli.quiet {
        println!(
            "qoa-loadgen: {} requests, {}% load ({} per M vcycles, capacity {}), seed {}{}",
            requests.len(),
            cli.load_pct,
            rate,
            capacity,
            cli.seed,
            match cli.chaos_seed {
                Some(s) => format!(", chaos seed {s}"),
                None => String::new(),
            }
        );
    }

    if let Some(path) = &cli.plan_out {
        let body: String = requests
            .iter()
            .map(|r| {
                plan_line(r, &cfg.tenants[r.tenant].name, &cfg.workloads[r.workload].name) + "\n"
            })
            .collect();
        std::fs::write(path, body).map_err(|e| format!("writing plan: {e}"))?;
    }

    let report = serve(&cfg, &requests, &calib).map_err(|e| e.to_string())?;
    if !cli.quiet {
        print!("{}", report.render());
    }

    if let Some(path) = &cli.journal {
        std::fs::write(path, render_journal(&cfg, &report))
            .map_err(|e| format!("writing journal: {e}"))?;
    }
    if let Some(path) = &cli.metrics {
        let mut reg = Registry::new();
        report.export(&mut reg);
        std::fs::write(path, reg.expose()).map_err(|e| format!("writing metrics: {e}"))?;
    }
    if let Some(dir) = &cli.bench_out {
        let mut entries = Vec::new();
        for (wi, w) in cfg.workloads.iter().enumerate() {
            for tier in Tier::ALL {
                if let Some(e) = calib.entry(wi, tier) {
                    entries.push(BenchEntry {
                        class: format!("{}/{}", w.name, tier.name()),
                        wall_nanos: e.wall_nanos,
                        cycles: e.cost,
                    });
                }
            }
        }
        write_bench_json(dir, "serve", "qoa-loadgen", cli.seed, &entries)
            .map_err(|e| e.to_string())?;
    }

    if report.faults() != report.restores() {
        return Err(format!(
            "invariant violated: {} faults but {} restores",
            report.faults(),
            report.restores()
        ));
    }
    if cli.deny_failures && report.failed() > 0 {
        eprintln!("qoa-loadgen: {} hard failures (should be shed, not failed)", report.failed());
        return Ok(ExitCode::from(3));
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let cli = match parse() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(1);
        }
    };
    match run(&cli) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("qoa-loadgen: {msg}");
            ExitCode::from(2)
        }
    }
}
