//! `qoa-serve`: the snapshot-fork serving daemon.
//!
//! Consumes a request plan (one JSON object per line, as written by
//! `qoa-loadgen --plan-out`), pre-warms one snapshot per registered
//! `(workload, tier)` pair, and serves the plan through the admission /
//! degradation / deadline lifecycle, writing the deterministic journal
//! and Prometheus metrics. `--demo N` generates a small 1x burst
//! in-process instead of reading a plan.

use qoa_obs::Registry;
use qoa_serve::{
    calibrate, generate, parse_plan, render_journal, serve, standard_tenants, ArrivalSpec,
    ChaosConfig, ServeConfig, TenantMix,
};
use qoa_workloads::Scale;
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    plan: Option<PathBuf>,
    demo: Option<usize>,
    workloads: Vec<String>,
    scale: Scale,
    rate_per_m: Option<u64>,
    seed: u64,
    chaos_seed: Option<u64>,
    chaos_points: usize,
    jobs: usize,
    virtual_workers: usize,
    window: usize,
    max_queue: u64,
    journal: Option<PathBuf>,
    metrics: Option<PathBuf>,
    deny_failures: bool,
    quiet: bool,
}

const USAGE: &str = "usage: qoa-serve (--plan PATH | --demo N) [flags]\n\
  --plan PATH         request plan file (from qoa-loadgen --plan-out)\n\
  --demo N            generate and serve an N-request 1x burst instead\n\
  --workloads A,B,C   registered workloads (default go,float,richards)\n\
  --scale S           tiny|small|full (default tiny)\n\
  --rate-per-m R      quota sizing rate (default: measured from the plan)\n\
  --seed N            executor seed (default 1)\n\
  --chaos-seed N      arm per-request fault plans from this seed\n\
  --chaos-points N    max fault points per request (default 2)\n\
  --jobs N            executor worker threads (default 2)\n\
  --virtual-workers N virtual servers (default 4)\n\
  --window N          admission window (default 16)\n\
  --max-queue N       bounded queue, request-equivalents (default 48)\n\
  --journal PATH      write the deterministic request journal\n\
  --metrics PATH      write Prometheus exposition\n\
  --deny-failures     exit 3 if any request hard-fails\n\
  --quiet             suppress the run summary\n";

fn parse() -> Result<Cli, String> {
    let mut cli = Cli {
        plan: None,
        demo: None,
        workloads: vec!["go".into(), "float".into(), "richards".into()],
        scale: Scale::Tiny,
        rate_per_m: None,
        seed: 1,
        chaos_seed: None,
        chaos_points: 2,
        jobs: 2,
        virtual_workers: 4,
        window: 16,
        max_queue: 48,
        journal: None,
        metrics: None,
        deny_failures: false,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |name: &str| {
            args.next().ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--plan" => cli.plan = Some(PathBuf::from(val("--plan")?)),
            "--demo" => cli.demo = Some(num(&val("--demo")?)? as usize),
            "--workloads" => {
                cli.workloads = val("--workloads")?.split(',').map(str::to_string).collect();
            }
            "--scale" => {
                cli.scale = match val("--scale")?.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    other => return Err(format!("unknown scale '{other}'")),
                };
            }
            "--rate-per-m" => cli.rate_per_m = Some(num(&val("--rate-per-m")?)?),
            "--seed" => cli.seed = num(&val("--seed")?)?,
            "--chaos-seed" => cli.chaos_seed = Some(num(&val("--chaos-seed")?)?),
            "--chaos-points" => cli.chaos_points = num(&val("--chaos-points")?)? as usize,
            "--jobs" => cli.jobs = num(&val("--jobs")?)? as usize,
            "--virtual-workers" => cli.virtual_workers = num(&val("--virtual-workers")?)? as usize,
            "--window" => cli.window = num(&val("--window")?)? as usize,
            "--max-queue" => cli.max_queue = num(&val("--max-queue")?)?,
            "--journal" => cli.journal = Some(PathBuf::from(val("--journal")?)),
            "--metrics" => cli.metrics = Some(PathBuf::from(val("--metrics")?)),
            "--deny-failures" => cli.deny_failures = true,
            "--quiet" => cli.quiet = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    if cli.plan.is_none() && cli.demo.is_none() {
        return Err(format!("one of --plan or --demo is required\n{USAGE}"));
    }
    Ok(cli)
}

fn num(s: &str) -> Result<u64, String> {
    s.parse::<u64>().map_err(|_| format!("not a number: '{s}'"))
}

fn run(cli: &Cli) -> Result<ExitCode, String> {
    let names: Vec<&str> = cli.workloads.iter().map(String::as_str).collect();
    let mut cfg = ServeConfig::new(&names, cli.scale, Vec::new()).map_err(|e| e.to_string())?;
    cfg.jobs = cli.jobs;
    cfg.virtual_workers = cli.virtual_workers;
    cfg.window = cli.window;
    cfg.max_queue = cli.max_queue;
    cfg.ladder.full_max = (cli.window + cli.virtual_workers) as u64;
    cfg.ladder.nojit_max = cfg.ladder.full_max + cli.max_queue / 2;
    cfg.seed = cli.seed;
    cfg.chaos = cli.chaos_seed.map(|seed| ChaosConfig { seed, points: cli.chaos_points });

    let calib = calibrate(&cfg).map_err(|e| e.to_string())?;
    let capacity = calib.capacity_per_m(cfg.virtual_workers);

    // Tenant names must exist before a plan referencing them can parse;
    // quota sizing is finalized once the offered rate is known.
    cfg.tenants = standard_tenants(capacity, calib.mean_cost_full);
    let requests = match (&cli.plan, cli.demo) {
        (Some(path), _) => {
            let body =
                std::fs::read_to_string(path).map_err(|e| format!("reading plan: {e}"))?;
            let reqs = parse_plan(&body, &cfg.tenant_names(), &cfg.workload_names())
                .map_err(|e| e.to_string())?;
            let span = reqs.last().map_or(0, |r| r.arrival);
            let measured = (reqs.len() as u64)
                .saturating_mul(1_000_000)
                .checked_div(span)
                .unwrap_or(capacity);
            let rate = cli.rate_per_m.unwrap_or(measured.max(1));
            cfg.tenants = standard_tenants(rate, calib.mean_cost_full);
            reqs
        }
        (None, Some(n)) => {
            let rate = cli.rate_per_m.unwrap_or(capacity.max(1));
            cfg.tenants = standard_tenants(rate, calib.mean_cost_full);
            generate(&ArrivalSpec {
                seed: cli.seed,
                count: n,
                rate_per_m: rate,
                tenants: cfg
                    .tenants
                    .iter()
                    .map(|t| TenantMix {
                        weight: t.weight,
                        priority: t.priority,
                        deadline: t.deadline,
                    })
                    .collect(),
                workload_weights: vec![1; cfg.workloads.len()],
            })
        }
        (None, None) => unreachable!("parse() requires --plan or --demo"),
    };

    if !cli.quiet {
        println!(
            "qoa-serve: {} requests over {} workloads, {} virtual workers, seed {}{}",
            requests.len(),
            cfg.workloads.len(),
            cfg.virtual_workers,
            cli.seed,
            match cli.chaos_seed {
                Some(s) => format!(", chaos seed {s}"),
                None => String::new(),
            }
        );
    }

    let report = serve(&cfg, &requests, &calib).map_err(|e| e.to_string())?;
    if !cli.quiet {
        print!("{}", report.render());
    }

    if let Some(path) = &cli.journal {
        std::fs::write(path, render_journal(&cfg, &report))
            .map_err(|e| format!("writing journal: {e}"))?;
    }
    if let Some(path) = &cli.metrics {
        let mut reg = Registry::new();
        report.export(&mut reg);
        std::fs::write(path, reg.expose()).map_err(|e| format!("writing metrics: {e}"))?;
    }

    if cli.deny_failures && report.failed() > 0 {
        eprintln!("qoa-serve: {} hard failures (should be shed, not failed)", report.failed());
        return Ok(ExitCode::from(3));
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let cli = match parse() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(1);
        }
    };
    match run(&cli) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("qoa-serve: {msg}");
            ExitCode::from(2)
        }
    }
}
