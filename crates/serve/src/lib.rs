//! Snapshot-fork multi-tenant serving over the QOA stack.
//!
//! Composes the stack's robustness primitives into a serving daemon on
//! the "millions of users" path the ROADMAP names:
//!
//! * [`pool`] — pre-warmed [`qoa_chaos::Snapshot`]s, one per
//!   `(workload, tier)`, forked per request; chaos faults recover by
//!   restoring the snapshot, so clients see slow answers, never wrong
//!   ones.
//! * [`admission`] — per-tenant token buckets over virtual time.
//! * [`arrivals`] — seeded open-loop Poisson arrivals, pure-integer.
//! * [`server`] — the request lifecycle: admission gates, degradation
//!   ladder, bounded queues shedding lowest-priority-first through the
//!   supervised executor, per-tenant circuit breakers, deadline
//!   enforcement via calibrated fuel caps, and a deterministic
//!   virtual-time journal with `qoa-obs` metrics exposition.
//!
//! # Example: a tiny deterministic burst
//!
//! ```
//! use qoa_serve::{calibrate, generate, serve, standard_tenants};
//! use qoa_serve::{ArrivalSpec, ServeConfig, TenantMix};
//! use qoa_workloads::Scale;
//!
//! let mut cfg = ServeConfig::new(&["go"], Scale::Tiny, Vec::new()).expect("workloads");
//! let calib = calibrate(&cfg).expect("calibrates");
//! let rate = calib.capacity_per_m(cfg.virtual_workers) / 2;
//! cfg.tenants = standard_tenants(rate, calib.mean_cost_full);
//! let spec = ArrivalSpec {
//!     seed: 7,
//!     count: 32,
//!     rate_per_m: rate,
//!     tenants: cfg
//!         .tenants
//!         .iter()
//!         .map(|t| TenantMix { weight: t.weight, priority: t.priority, deadline: t.deadline })
//!         .collect(),
//!     workload_weights: vec![1],
//! };
//! let requests = generate(&spec);
//! let report = serve(&cfg, &requests, &calib).expect("serves");
//! assert_eq!(report.failed(), 0, "overload alone never hard-fails");
//! ```

pub mod admission;
pub mod arrivals;
pub mod pool;
pub mod server;

pub use admission::{TokenBucket, TokenBucketConfig, MICRO};
pub use arrivals::{generate, parse_plan, plan_line, ArrivalSpec, Request, SplitMix64, TenantMix};
pub use pool::{hash_output, prewarm, serve_one, ForkRun, Machine, Tier};
pub use server::{
    calibrate, fuel_cap, journal_line, render_journal, serve, standard_tenants,
    strip_fault_counters, CalibEntry, Calibration, ChaosConfig, Ladder, Outcome, RequestRecord,
    ServeConfig, ServeReport, ShedCause, TenantConfig, WorkloadSpec,
};
