//! Snapshot-fork worker pool: pre-warmed machines, per-request clones.
//!
//! A serving VM is expensive to construct (parse, compile, verify, load)
//! but cheap to *clone*: every machine state in the stack is plain data
//! behind `Clone`. The pool therefore pre-warms one machine per
//! `(workload, tier)` pair, captures a [`qoa_chaos::Snapshot`] of it
//! before the first guest bytecode runs, and serves each request from a
//! fresh restore of that snapshot — a fork-style warm start.
//!
//! Machines hold `Rc` internals and are deliberately not `Send`, so
//! snapshots never cross threads. Each executor worker lazily warms its
//! own thread-local pool instead; results are identical regardless of
//! which worker serves a request, so determinism is unaffected.

use qoa_chaos::{ChaosState, FaultKind, FaultPlan, Snapshot};
use qoa_core::runtime::DEFAULT_FUEL;
use qoa_core::QoaError;
use qoa_jit::{JitConfig, PyPyVm};
use qoa_model::CountingSink;
use qoa_vm::{HeapMode, Vm, VmConfig};
use std::cell::RefCell;
use std::collections::HashMap;

/// Graceful-degradation service tier, selected per admission window by
/// measured queue depth. Rejection (the final rung) is handled by the
/// bounded-queue shed gate, not by a tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// Tracing JIT enabled, verified bytecode, guard micro-ops elided.
    Full,
    /// JIT disabled: skips per-request trace recording and compilation,
    /// which short forked requests never amortize.
    NoJit,
    /// Checked interpreter: plain `Vm` with its dynamic guards intact —
    /// the most conservative rung before outright rejection.
    Checked,
}

impl Tier {
    /// Every tier, in degradation order.
    pub const ALL: [Tier; 3] = [Tier::Full, Tier::NoJit, Tier::Checked];

    /// Stable journal/metrics label.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Full => "full",
            Tier::NoJit => "nojit",
            Tier::Checked => "checked",
        }
    }

    /// Fault kinds a chaos plan may fire in this tier. Load-time
    /// corruption is excluded: serving forks restore post-load
    /// snapshots, so the load-path poll site is never reached.
    pub fn fault_kinds(self) -> &'static [FaultKind] {
        const JIT: [FaultKind; 5] = [
            FaultKind::AllocFault,
            FaultKind::FuelTrip,
            FaultKind::DeadlineTrip,
            FaultKind::JitCompileFault,
            FaultKind::TraceAbort,
        ];
        const INTERP: [FaultKind; 3] =
            [FaultKind::AllocFault, FaultKind::FuelTrip, FaultKind::DeadlineTrip];
        match self {
            Tier::Full => &JIT,
            Tier::NoJit | Tier::Checked => &INTERP,
        }
    }
}

/// A pre-warmable serving machine: either the tracing-JIT runtime or the
/// plain checked interpreter, both counting micro-ops as service cost.
#[derive(Clone)]
pub enum Machine {
    /// `PyPyVm` (JIT on or off per [`JitConfig::enabled`]).
    Jit(Box<PyPyVm<CountingSink>>),
    /// Plain `Vm` with dynamic guards.
    Interp(Box<Vm<CountingSink>>),
}

impl Machine {
    fn set_fuel(&mut self, fuel: u64) {
        match self {
            Machine::Jit(m) => m.set_fuel(fuel),
            Machine::Interp(m) => m.set_fuel(fuel),
        }
    }

    fn arm_chaos(&mut self, chaos: ChaosState) {
        match self {
            Machine::Jit(m) => m.arm_chaos(chaos),
            Machine::Interp(m) => m.arm_chaos(chaos),
        }
    }

    fn take_injected(&mut self) -> Option<qoa_chaos::FaultRecord> {
        match self {
            Machine::Jit(m) => m.take_injected(),
            Machine::Interp(m) => m.take_injected(),
        }
    }

    fn run(&mut self) -> Result<(), qoa_vm::VmError> {
        match self {
            Machine::Jit(m) => m.run(),
            Machine::Interp(m) => m.run(),
        }
    }

    fn steps(&self) -> u64 {
        match self {
            Machine::Jit(m) => m.vm.steps(),
            Machine::Interp(m) => m.steps(),
        }
    }

    fn finish(self) -> (Option<String>, Vec<String>, CountingSink) {
        let mut vm = match self {
            Machine::Jit(m) => m.vm,
            Machine::Interp(m) => *m,
        };
        let result = vm.global_display("result");
        let output = vm.output().to_vec();
        let (sink, _) = vm.finish();
        (result, output, sink)
    }
}

/// Everything one forked request execution yields. `cost` is the
/// micro-op count of the final clean pass — the request's virtual
/// service time — and is identical whether or not faults were injected
/// and recovered along the way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForkRun {
    /// Micro-ops of the clean pass (virtual service cycles).
    pub cost: u64,
    /// Guest bytecodes executed by the clean pass.
    pub steps: u64,
    /// Rendered `result` global, the response payload.
    pub result: Option<String>,
    /// FNV-1a hash over guest stdout lines.
    pub out_hash: u64,
    /// Guest stdout line count.
    pub output_lines: u64,
    /// Chaos faults that fired and were recovered.
    pub faults: u64,
    /// Snapshot restores consumed by recovery (one per fault).
    pub restores: u64,
}

/// FNV-1a over output lines, newline-delimited.
pub fn hash_output(lines: &[String]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for line in lines {
        for b in line.as_bytes().iter().copied().chain(std::iter::once(b'\n')) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn fnv1a_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Compiles, loads, and snapshots one machine for `(source, tier)`.
/// The snapshot is captured before the first guest bytecode executes,
/// so every restore replays the whole request from a warm start.
///
/// # Errors
///
/// Compile or verification failures of the workload source.
pub fn prewarm(source: &str, tier: Tier) -> Result<Snapshot<Machine>, QoaError> {
    let code = qoa_frontend::compile(source)?;
    let machine = match tier {
        Tier::Checked => {
            let cfg = VmConfig {
                heap: HeapMode::Rc,
                max_steps: DEFAULT_FUEL,
                deadline: None,
                max_heap_bytes: 0,
            };
            let mut vm = Vm::new(cfg, CountingSink::default());
            vm.load_program(&code);
            Machine::Interp(Box::new(vm))
        }
        Tier::Full | Tier::NoJit => {
            let verified = qoa_analysis::verify(&code)?;
            let cfg = JitConfig {
                enabled: tier == Tier::Full,
                max_steps: DEFAULT_FUEL,
                deadline: None,
                ..JitConfig::default()
            };
            let mut vm = PyPyVm::new(cfg, CountingSink::default());
            vm.load_verified(&verified);
            Machine::Jit(Box::new(vm))
        }
    };
    Ok(Snapshot::capture(0, &machine))
}

thread_local! {
    /// Per-thread snapshot pool, keyed by workload identity and tier.
    /// Executor workers are born per batch; each warms lazily on first
    /// use and serves every subsequent fork of the same workload from
    /// the cached snapshot.
    static POOL: RefCell<HashMap<(u64, Tier), Snapshot<Machine>>> =
        RefCell::new(HashMap::new());
}

/// Serves one request: restores a clone of the pre-warmed snapshot for
/// `(source, tier)`, caps its fuel at `fuel` guest bytecodes (0 =
/// unlimited), optionally arms a chaos plan, and runs to completion.
///
/// Recovery loop: when an armed fault fires, the partial execution is
/// discarded, the snapshot is restored again with the consumed fault
/// point disarmed, and the request re-runs. The client observes a
/// slower response, never a wrong one — the clean pass is byte-for-byte
/// the execution a fault-free serve would have produced.
///
/// # Errors
///
/// Compile/verify errors from a cold pool miss, or the organic (not
/// injected) guest error of the final pass — including
/// [`QoaError::FuelExhausted`] when the deadline-derived fuel cap trips,
/// which the server reports as a deadline shed, never a partial result.
pub fn serve_one(
    source: &str,
    tier: Tier,
    fuel: u64,
    plan: Option<&FaultPlan>,
) -> Result<ForkRun, QoaError> {
    let key = (fnv1a_str(source), tier);
    POOL.with(|cell| {
        let mut pool = cell.borrow_mut();
        let snap = match pool.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => e.insert(prewarm(source, tier)?),
        };
        run_from(snap, fuel, plan)
    })
}

fn run_from(
    snap: &Snapshot<Machine>,
    fuel: u64,
    plan: Option<&FaultPlan>,
) -> Result<ForkRun, QoaError> {
    let mut disarmed: Vec<usize> = Vec::new();
    let mut faults = 0u64;
    loop {
        let mut machine = snap.restore().ok_or_else(|| QoaError::Guest {
            message: "snapshot version mismatch on restore".into(),
            line: 0,
        })?;
        machine.set_fuel(fuel);
        if let Some(plan) = plan {
            if !plan.is_empty() {
                let mut chaos = ChaosState::new(plan.clone());
                for &idx in &disarmed {
                    chaos.disarm(idx);
                }
                machine.arm_chaos(chaos);
            }
        }
        match machine.run() {
            Ok(()) => {
                let steps = machine.steps();
                let (result, output, sink) = machine.finish();
                return Ok(ForkRun {
                    cost: sink.total(),
                    steps,
                    result,
                    out_hash: hash_output(&output),
                    output_lines: output.len() as u64,
                    faults,
                    restores: faults,
                });
            }
            Err(err) => match machine.take_injected() {
                Some(record) => {
                    faults += 1;
                    if !disarmed.contains(&record.index) {
                        disarmed.push(record.index);
                    }
                }
                None => return Err(QoaError::from(err)),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "t = 0\nfor i in range(400):\n    t = t + i\nresult = t\n";

    #[test]
    fn tiers_agree_on_results() {
        let mut results = Vec::new();
        for tier in Tier::ALL {
            let run = serve_one(SRC, tier, 0, None).expect("serves");
            assert!(run.cost > 0, "{}: zero cost", tier.name());
            results.push(run.result.expect("result global"));
        }
        results.dedup();
        assert_eq!(results.len(), 1, "tiers disagree: {results:?}");
    }

    #[test]
    fn forks_are_independent_and_identical() {
        let a = serve_one(SRC, Tier::Full, 0, None).expect("first fork");
        let b = serve_one(SRC, Tier::Full, 0, None).expect("second fork");
        assert_eq!(a, b, "forks from one snapshot must be identical");
    }

    #[test]
    fn fuel_cap_trips_as_fuel_exhausted() {
        let err = serve_one(SRC, Tier::Checked, 10, None).expect_err("tiny fuel");
        assert_eq!(err.kind(), "fuel");
    }

    #[test]
    fn chaos_recovery_yields_clean_results() {
        let clean = serve_one(SRC, Tier::Full, 0, None).expect("fault-free");
        let mut recovered = 0u64;
        for seed in 0..24u64 {
            let plan = FaultPlan::seeded(seed, clean.steps, 2, Tier::Full.fault_kinds());
            let run = serve_one(SRC, Tier::Full, 0, Some(&plan)).expect("recovers");
            assert_eq!(run.result, clean.result, "seed {seed}: wrong result");
            assert_eq!(run.out_hash, clean.out_hash, "seed {seed}: wrong output");
            assert_eq!(run.cost, clean.cost, "seed {seed}: clean pass diverged");
            recovered += run.faults;
        }
        assert!(recovered > 0, "no fault ever fired across 24 seeds");
    }
}
