//! Fig. 16: nursery sweep for the V8 preset at 2/4/8 MB last-level
//! caches, averaged over a JetStream subset and normalized per-config to
//! the 1 MB nursery run.

use qoa_bench::{cli, emit, sweep_subset};
use qoa_core::report::{f3, Table};
use qoa_core::runtime::RuntimeConfig;
use qoa_core::sweeps::{format_bytes, nursery_sweep, NURSERY_SIZES_SCALED as NURSERY_SIZES};
use qoa_model::RuntimeKind;
use qoa_uarch::UarchConfig;

const SUBSET: [&str; 6] = ["splay", "hash-map", "richards", "tagcloud", "earley-boyer", "cdjs"];

fn main() {
    let cli = cli();
    let suite = sweep_subset(&cli, qoa_workloads::jetstream_suite(), &SUBSET);
    let rt = RuntimeConfig::new(RuntimeKind::V8);
    let baseline_idx = NURSERY_SIZES
        .iter()
        .position(|&b| b == (1 << 20))
        .expect("1MB nursery is in the sweep");

    let mut cols: Vec<String> = vec!["LLC size".into()];
    cols.extend(NURSERY_SIZES.iter().map(|&b| format_bytes(b)));
    let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Fig. 16: V8 normalized execution time vs nursery size",
        &col_refs,
    );
    for llc in [2u64 << 20, 4 << 20, 8 << 20] {
        eprintln!("LLC {}...", format_bytes(llc));
        let uarch = UarchConfig::skylake().with_llc_size(llc);
        let mut norm = vec![0.0f64; NURSERY_SIZES.len()];
        for w in &suite {
            let pts = nursery_sweep(w, cli.scale, &rt, &uarch, &NURSERY_SIZES)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let base = pts[baseline_idx].cycles.max(1) as f64;
            for (i, p) in pts.iter().enumerate() {
                norm[i] += p.cycles as f64 / base;
            }
        }
        let n = suite.len() as f64;
        let mut row = vec![format_bytes(llc)];
        row.extend(norm.iter().map(|v| f3(v / n)));
        t.row(row);
    }
    emit(&cli, &t);
}
