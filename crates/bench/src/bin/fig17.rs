//! Fig. 17: normalized execution time with the best nursery size chosen
//! per application (PyPy w/ JIT, 2 MB LLC), against the static
//! half-of-cache (1 MB) baseline — plus the paper's two headline
//! averages: best-per-app (-21.4%) vs max-nursery-for-all (-9.8%).

use qoa_bench::{cli, emit, sweep_subset};
use qoa_core::report::{f3, Table};
use qoa_core::runtime::RuntimeConfig;
use qoa_core::sweeps::{best_nursery, format_bytes, nursery_sweep, NURSERY_SIZES_SCALED as NURSERY_SIZES};
use qoa_model::RuntimeKind;
use qoa_uarch::UarchConfig;
use qoa_workloads::FIG14_BENCHMARKS;

fn main() {
    let cli = cli();
    let suite = sweep_subset(&cli, qoa_workloads::python_suite(), &FIG14_BENCHMARKS);
    let rt = RuntimeConfig::new(RuntimeKind::PyPyJit);
    let uarch = UarchConfig::skylake();
    let baseline_idx = NURSERY_SIZES
        .iter()
        .position(|&b| b == (1 << 20))
        .expect("1MB nursery is in the sweep");
    let max_idx = NURSERY_SIZES.len() - 1;

    let mut t = Table::new(
        "Fig. 17: normalized execution time at the best nursery per benchmark",
        &["benchmark", "best nursery", "best/baseline", "max/baseline"],
    );
    let mut best_sum = 0.0;
    let mut max_sum = 0.0;
    for w in &suite {
        eprintln!("sweeping {}...", w.name);
        let pts = nursery_sweep(w, cli.scale, &rt, &uarch, &NURSERY_SIZES)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let base = pts[baseline_idx].cycles.max(1) as f64;
        let best = best_nursery(&pts);
        let best_norm = best.cycles as f64 / base;
        let max_norm = pts[max_idx].cycles as f64 / base;
        best_sum += best_norm;
        max_sum += max_norm;
        t.row(vec![
            w.name.to_string(),
            format_bytes(best.nursery),
            f3(best_norm),
            f3(max_norm),
        ]);
    }
    let n = suite.len() as f64;
    t.row(vec![
        "GEOMEAN/AVG".into(),
        "-".into(),
        f3(best_sum / n),
        f3(max_sum / n),
    ]);
    emit(&cli, &t);
    println!(
        "best-per-app saves {:.1}% [paper: 21.4%]; max-for-all saves {:.1}% [paper: 9.8%]",
        (1.0 - best_sum / n) * 100.0,
        (1.0 - max_sum / n) * 100.0
    );
}
