//! Fig. 17: normalized execution time with the best nursery size chosen
//! per application (PyPy w/ JIT, 2 MB LLC), against the static
//! half-of-cache (1 MB) baseline — plus the paper's two headline
//! averages: best-per-app (-21.4%) vs max-nursery-for-all (-9.8%).

use qoa_bench::{cell_chaos, cli, emit, harness, prewarm, sweep_subset, NA};
use qoa_core::harness::{best_nursery_cell, nursery_cells, nursery_spec};
use qoa_core::report::{f3, Table};
use qoa_core::runtime::RuntimeConfig;
use qoa_core::sweeps::{format_bytes, NURSERY_SIZES_SCALED as NURSERY_SIZES};
use qoa_model::RuntimeKind;
use qoa_uarch::UarchConfig;
use qoa_workloads::FIG14_BENCHMARKS;

fn main() {
    let cli = cli();
    let mut h = harness(&cli, "fig17");
    let suite = sweep_subset(&cli, qoa_workloads::python_suite(), &FIG14_BENCHMARKS);
    let rt = RuntimeConfig::new(RuntimeKind::PyPyJit);
    let uarch = UarchConfig::skylake();
    let chaos = cell_chaos(&cli);
    let mut specs = Vec::new();
    for &w in &suite {
        for &n in NURSERY_SIZES.iter() {
            specs.push(nursery_spec(w, cli.scale, &rt, &uarch, n, "", chaos));
        }
    }
    prewarm(&cli, &mut h, specs);
    let baseline_idx = NURSERY_SIZES
        .iter()
        .position(|&b| b == (1 << 20))
        .expect("1MB nursery is in the sweep");
    let max_idx = NURSERY_SIZES.len() - 1;

    let mut t = Table::new(
        "Fig. 17: normalized execution time at the best nursery per benchmark",
        &["benchmark", "best nursery", "best/baseline", "max/baseline"],
    );
    let mut best_sum = 0.0;
    let mut best_n = 0usize;
    let mut max_sum = 0.0;
    let mut max_n = 0usize;
    for w in &suite {
        eprintln!("sweeping {}...", w.name);
        let pts = nursery_cells(&mut h, w, cli.scale, &rt, &uarch, &NURSERY_SIZES);
        // Both columns normalize to the workload's own baseline point.
        let Some(base) = pts[baseline_idx].as_ref().map(|p| p.cycles.max(1) as f64) else {
            t.row(vec![w.name.to_string(), NA.into(), NA.into(), NA.into()]);
            continue;
        };
        let best = best_nursery_cell(&pts);
        let best_cell = best.map(|b| {
            let norm = b.cycles as f64 / base;
            best_sum += norm;
            best_n += 1;
            (format_bytes(b.nursery), f3(norm))
        });
        let max_cell = pts[max_idx].as_ref().map(|p| {
            let norm = p.cycles as f64 / base;
            max_sum += norm;
            max_n += 1;
            f3(norm)
        });
        let (best_nursery, best_norm) = best_cell.unwrap_or((NA.into(), NA.into()));
        t.row(vec![
            w.name.to_string(),
            best_nursery,
            best_norm,
            max_cell.unwrap_or(NA.into()),
        ]);
    }
    t.row(vec![
        "GEOMEAN/AVG".into(),
        "-".into(),
        if best_n == 0 { NA.into() } else { f3(best_sum / best_n as f64) },
        if max_n == 0 { NA.into() } else { f3(max_sum / max_n as f64) },
    ]);
    emit(&cli, &t);
    if best_n > 0 && max_n > 0 {
        println!(
            "best-per-app saves {:.1}% [paper: 21.4%]; max-for-all saves {:.1}% [paper: 9.8%]",
            (1.0 - best_sum / best_n as f64) * 100.0,
            (1.0 - max_sum / max_n as f64) * 100.0
        );
    }
    std::process::exit(h.finish());
}
