//! Fig. 15: per-benchmark normalized execution time across nursery sizes,
//! PyPy **without** JIT, on the paper's eight-benchmark subset.

use qoa_bench::{cell_chaos, cli, emit, harness, prewarm, sweep_subset, NA};
use qoa_core::harness::{nursery_cells, nursery_spec};
use qoa_core::report::{f3, Table};
use qoa_core::runtime::RuntimeConfig;
use qoa_core::sweeps::{format_bytes, NURSERY_SIZES_SCALED as NURSERY_SIZES};
use qoa_model::RuntimeKind;
use qoa_uarch::UarchConfig;
use qoa_workloads::FIG14_BENCHMARKS;

fn main() {
    let cli = cli();
    let mut h = harness(&cli, "fig15");
    let suite = sweep_subset(&cli, qoa_workloads::python_suite(), &FIG14_BENCHMARKS);
    let rt = RuntimeConfig::new(RuntimeKind::PyPyNoJit);
    let uarch = UarchConfig::skylake();
    let chaos = cell_chaos(&cli);
    let mut specs = Vec::new();
    for &w in &suite {
        for &n in NURSERY_SIZES.iter() {
            specs.push(nursery_spec(w, cli.scale, &rt, &uarch, n, "", chaos));
        }
    }
    prewarm(&cli, &mut h, specs);
    let baseline_idx = NURSERY_SIZES
        .iter()
        .position(|&b| b == (1 << 20))
        .expect("1MB nursery is in the sweep");

    let mut cols: Vec<String> = vec!["benchmark".into()];
    cols.extend(NURSERY_SIZES.iter().map(|&b| format_bytes(b)));
    let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Fig. 15: normalized execution time vs nursery (PyPy w/o JIT)",
        &col_refs,
    );
    for w in &suite {
        eprintln!("sweeping {}...", w.name);
        let pts = nursery_cells(&mut h, w, cli.scale, &rt, &uarch, &NURSERY_SIZES);
        let base = pts[baseline_idx].as_ref().map(|p| p.cycles.max(1) as f64);
        let mut row = vec![w.name.to_string()];
        row.extend(pts.iter().map(|p| match (p, base) {
            (Some(p), Some(base)) => f3(p.cycles as f64 / base),
            _ => NA.into(),
        }));
        t.row(row);
    }
    emit(&cli, &t);
    std::process::exit(h.finish());
}
