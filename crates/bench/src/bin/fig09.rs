//! Fig. 9: microarchitecture sweeps for the V8 preset over the
//! JetStream-analog suite (average CPI line per parameter).

use qoa_bench::{cell_chaos, cli, emit, harness, prewarm, sweep_subset, NA};
use qoa_core::harness::{shared_trace_cache, sweep_param_cell, sweep_param_spec};
use qoa_core::report::{f3, Table};
use qoa_core::runtime::RuntimeConfig;
use qoa_core::sweeps::{SweepParam, SCALED_DEFAULT_NURSERY};
use qoa_model::RuntimeKind;
use qoa_uarch::UarchConfig;

/// Default JetStream subset: one per behavioural family.
const SUBSET: [&str; 8] = [
    "richards",
    "n-body",
    "splay",
    "hash-map",
    "regexp-2010",
    "typescript",
    "crypto-md5",
    "float-mm.c",
];

fn main() {
    let cli = cli();
    let mut h = harness(&cli, "fig09");
    let suite = sweep_subset(&cli, qoa_workloads::jetstream_suite(), &SUBSET);
    let rt = RuntimeConfig::new(RuntimeKind::V8).with_nursery(SCALED_DEFAULT_NURSERY);
    let base = UarchConfig::skylake();
    let chaos = cell_chaos(&cli);
    let mut specs = Vec::new();
    for &w in &suite {
        let cache = shared_trace_cache();
        for &param in SweepParam::ALL.iter() {
            specs.push(sweep_param_spec(w, cli.scale, &rt, &base, param, &cache, chaos));
        }
    }
    prewarm(&cli, &mut h, specs);

    // sums[param][point]; each benchmark's capture is shared across the
    // six parameters via the trace cache.
    let mut sums: Vec<Vec<f64>> =
        SweepParam::ALL.iter().map(|p| vec![0.0; p.values().len()]).collect();
    let mut counts = vec![0usize; SweepParam::ALL.len()];
    for w in &suite {
        eprintln!("sweeping {}...", w.name);
        let mut trace_cache = None;
        for (pi, &param) in SweepParam::ALL.iter().enumerate() {
            let Some(pts) =
                sweep_param_cell(&mut h, w, cli.scale, &rt, &base, param, &mut trace_cache)
            else {
                continue;
            };
            for (i, p) in pts.iter().enumerate() {
                sums[pi][i] += p.cpi;
            }
            counts[pi] += 1;
        }
    }

    for (pi, &param) in SweepParam::ALL.iter().enumerate() {
        let values = param.values();
        let mut cols: Vec<String> = vec!["series".into()];
        cols.extend(values.iter().map(|&v| param.format_value(v)));
        let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(
            format!("Fig. 9: V8 average CPI vs {}", param.label()),
            &col_refs,
        );
        let mut row = vec!["V8".to_string()];
        row.extend(sums[pi].iter().map(|v| {
            if counts[pi] == 0 {
                NA.into()
            } else {
                f3(v / counts[pi] as f64)
            }
        }));
        t.row(row);
        emit(&cli, &t);
    }
    std::process::exit(h.finish());
}
