//! Fig. 9: microarchitecture sweeps for the V8 preset over the
//! JetStream-analog suite (average CPI line per parameter).

use qoa_bench::{cli, emit, sweep_subset};
use qoa_core::report::{f3, Table};
use qoa_core::runtime::{capture, RuntimeConfig};
use qoa_core::sweeps::{sweep_trace, SweepParam, SCALED_DEFAULT_NURSERY};
use qoa_model::RuntimeKind;
use qoa_uarch::UarchConfig;

/// Default JetStream subset: one per behavioural family.
const SUBSET: [&str; 8] = [
    "richards",
    "n-body",
    "splay",
    "hash-map",
    "regexp-2010",
    "typescript",
    "crypto-md5",
    "float-mm.c",
];

fn main() {
    let cli = cli();
    let suite = sweep_subset(&cli, qoa_workloads::jetstream_suite(), &SUBSET);
    let rt = RuntimeConfig::new(RuntimeKind::V8).with_nursery(SCALED_DEFAULT_NURSERY);
    eprintln!("capturing {} JetStream benchmarks (V8 preset)...", suite.len());
    let traces: Vec<_> = suite
        .iter()
        .map(|w| {
            capture(&w.source(cli.scale), &rt)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name))
                .trace
        })
        .collect();

    let base = UarchConfig::skylake();
    for param in SweepParam::ALL {
        let values = param.values();
        let mut cols: Vec<String> = vec!["series".into()];
        cols.extend(values.iter().map(|&v| param.format_value(v)));
        let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(
            format!("Fig. 9: V8 average CPI vs {}", param.label()),
            &col_refs,
        );
        let mut avg = vec![0.0f64; values.len()];
        for trace in &traces {
            let pts = sweep_trace(trace, param, &base);
            for (i, p) in pts.iter().enumerate() {
                avg[i] += p.cpi;
            }
        }
        let n = traces.len() as f64;
        let mut row = vec!["V8".to_string()];
        row.extend(avg.iter().map(|v| f3(v / n)));
        t.row(row);
        emit(&cli, &t);
    }
}
