//! Fig. 11: PyPy execution-time breakdown (GC / non-GC / overall) across
//! nursery sizes, normalized to the half-of-LLC nursery run (1 MB nursery
//! for the 2 MB cache), averaged over the benchmark subset.

use qoa_bench::{cell_chaos, cli, emit, harness, prewarm, sweep_subset, NA};
use qoa_core::harness::{nursery_cells, nursery_spec};
use qoa_core::report::{f3, Table};
use qoa_core::runtime::RuntimeConfig;
use qoa_core::sweeps::{format_bytes, NURSERY_SIZES_SCALED as NURSERY_SIZES};
use qoa_model::RuntimeKind;
use qoa_uarch::UarchConfig;
use qoa_workloads::FIG14_BENCHMARKS;

fn main() {
    let cli = cli();
    let mut h = harness(&cli, "fig11");
    let suite = sweep_subset(&cli, qoa_workloads::python_suite(), &FIG14_BENCHMARKS);
    let rt = RuntimeConfig::new(RuntimeKind::PyPyJit);
    let uarch = UarchConfig::skylake();
    let chaos = cell_chaos(&cli);
    let mut specs = Vec::new();
    for &w in &suite {
        for &n in NURSERY_SIZES.iter() {
            specs.push(nursery_spec(w, cli.scale, &rt, &uarch, n, "", chaos));
        }
    }
    prewarm(&cli, &mut h, specs);

    let baseline_idx = NURSERY_SIZES
        .iter()
        .position(|&b| b == (1 << 20))
        .expect("1MB nursery is in the sweep");

    let mut gc = vec![0.0f64; NURSERY_SIZES.len()];
    let mut non_gc = vec![0.0f64; NURSERY_SIZES.len()];
    let mut overall = vec![0.0f64; NURSERY_SIZES.len()];
    let mut count = vec![0usize; NURSERY_SIZES.len()];
    for w in &suite {
        eprintln!("sweeping {}...", w.name);
        let pts = nursery_cells(&mut h, w, cli.scale, &rt, &uarch, &NURSERY_SIZES);
        // Normalization needs the workload's own baseline point.
        let Some(baseline) = &pts[baseline_idx] else { continue };
        let base = baseline.cycles.max(1) as f64;
        for (i, p) in pts.iter().enumerate() {
            let Some(p) = p else { continue };
            gc[i] += p.gc_cycles as f64 / base;
            non_gc[i] += p.non_gc_cycles() as f64 / base;
            overall[i] += p.cycles as f64 / base;
            count[i] += 1;
        }
    }

    let mut cols: Vec<String> = vec!["component".into()];
    cols.extend(NURSERY_SIZES.iter().map(|&b| format_bytes(b)));
    let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Fig. 11: execution time vs nursery size, normalized to the 1MB-nursery run",
        &col_refs,
    );
    for (label, series) in [("GC", &gc), ("Non-GC", &non_gc), ("Overall", &overall)] {
        let mut row = vec![label.to_string()];
        row.extend(series.iter().zip(&count).map(|(v, &c)| {
            if c == 0 {
                NA.into()
            } else {
                f3(v / c as f64)
            }
        }));
        t.row(row);
    }
    emit(&cli, &t);
    std::process::exit(h.finish());
}
