//! Fig. 13: garbage-collection time as a percentage of execution time,
//! per benchmark, PyPy without and with JIT (paper: the average GC share
//! grows ~4.6x — from 3% to 14% — when the JIT removes mutator work).

use qoa_bench::{cli, emit, limit};
use qoa_core::report::{pct, Table};
use qoa_core::runtime::{capture, RuntimeConfig};
// Fig. 13 uses a smaller scaled nursery so collections are frequent
// enough to measure on laptop-scale workload instances.
const FIG13_NURSERY: u64 = 256 << 10;
use qoa_model::RuntimeKind;
use qoa_uarch::UarchConfig;

fn main() {
    let cli = cli();
    let suite = limit(&cli, qoa_workloads::python_suite());
    let uarch = UarchConfig::skylake();
    let mut t = Table::new(
        "Fig. 13: GC time as % of execution time (PyPy)",
        &["benchmark", "w/o JIT", "w/ JIT"],
    );
    let mut sum_nojit = 0.0;
    let mut sum_jit = 0.0;
    for w in &suite {
        eprintln!("running {}...", w.name);
        let mut shares = [0.0f64; 2];
        for (i, kind) in [RuntimeKind::PyPyNoJit, RuntimeKind::PyPyJit].iter().enumerate() {
            let run = capture(&w.source(cli.scale), &RuntimeConfig::new(*kind).with_nursery(FIG13_NURSERY))
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let stats = run.trace.simulate_ooo(&uarch);
            shares[i] = stats.gc_share();
        }
        sum_nojit += shares[0];
        sum_jit += shares[1];
        t.row(vec![w.name.to_string(), pct(shares[0]), pct(shares[1])]);
    }
    let n = suite.len() as f64;
    t.row(vec!["AVG".into(), pct(sum_nojit / n), pct(sum_jit / n)]);
    emit(&cli, &t);
    println!(
        "GC share grows {:.1}x with JIT [paper: 4.6x, 3% -> 14%]",
        (sum_jit / n) / (sum_nojit / n).max(1e-9)
    );
}
