//! Fig. 13: garbage-collection time as a percentage of execution time,
//! per benchmark, PyPy without and with JIT (paper: the average GC share
//! grows ~4.6x — from 3% to 14% — when the JIT removes mutator work).

use qoa_bench::{cell_chaos, cli, emit, harness, limit, prewarm, NA};
use qoa_core::harness::capture_cell;
use qoa_core::journal::{CellKey, CellMetrics, Metric};
use qoa_core::report::{pct, Table};
use qoa_core::runtime::{capture, RuntimeConfig};
use qoa_core::SupervisedCell;
// Fig. 13 uses a smaller scaled nursery so collections are frequent
// enough to measure on laptop-scale workload instances.
const FIG13_NURSERY: u64 = 256 << 10;
use qoa_model::RuntimeKind;
use qoa_uarch::UarchConfig;

fn main() {
    let cli = cli();
    let mut h = harness(&cli, "fig13");
    let suite = limit(&cli, qoa_workloads::python_suite());
    let uarch = UarchConfig::skylake();
    let chaos = cell_chaos(&cli);
    let mut specs = Vec::new();
    for &w in &suite {
        for kind in [RuntimeKind::PyPyNoJit, RuntimeKind::PyPyJit] {
            let key = CellKey::new(
                w.name,
                format!("{kind:?}"),
                "nursery",
                FIG13_NURSERY.to_string(),
            );
            let mkey = key.clone();
            let uarch = uarch.clone();
            let scale = cli.scale;
            specs.push(SupervisedCell::new(key, move |deadline| {
                let rt = RuntimeConfig::new(kind)
                    .with_nursery(FIG13_NURSERY)
                    .with_deadline(deadline);
                let run = capture_cell(&w.source(scale), &rt, chaos, &mkey)?;
                let stats = run.trace.simulate_ooo(&uarch);
                let mut m = CellMetrics::new();
                m.insert("gc_share".into(), Metric::Num(stats.gc_share()));
                Ok(m)
            }));
        }
    }
    prewarm(&cli, &mut h, specs);
    let mut t = Table::new(
        "Fig. 13: GC time as % of execution time (PyPy)",
        &["benchmark", "w/o JIT", "w/ JIT"],
    );
    let mut sums = [0.0f64; 2];
    let mut counts = [0usize; 2];
    for w in &suite {
        eprintln!("running {}...", w.name);
        let mut shares: [Option<f64>; 2] = [None, None];
        for (i, kind) in [RuntimeKind::PyPyNoJit, RuntimeKind::PyPyJit].iter().enumerate() {
            let key = CellKey::new(
                w.name,
                format!("{kind:?}"),
                "nursery",
                FIG13_NURSERY.to_string(),
            );
            let metrics = h.cell(key, |deadline| {
                let rt = RuntimeConfig::new(*kind)
                    .with_nursery(FIG13_NURSERY)
                    .with_deadline(deadline);
                let run = capture(&w.source(cli.scale), &rt)?;
                let stats = run.trace.simulate_ooo(&uarch);
                let mut m = CellMetrics::new();
                m.insert("gc_share".into(), Metric::Num(stats.gc_share()));
                Ok(m)
            });
            shares[i] = metrics.and_then(|m| m.get("gc_share")?.as_f64());
            if let Some(s) = shares[i] {
                sums[i] += s;
                counts[i] += 1;
            }
        }
        t.row(vec![
            w.name.to_string(),
            shares[0].map_or(NA.into(), pct),
            shares[1].map_or(NA.into(), pct),
        ]);
    }
    let avg = |i: usize| (counts[i] > 0).then(|| sums[i] / counts[i] as f64);
    t.row(vec![
        "AVG".into(),
        avg(0).map_or(NA.into(), pct),
        avg(1).map_or(NA.into(), pct),
    ]);
    emit(&cli, &t);
    if let (Some(nojit), Some(jit)) = (avg(0), avg(1)) {
        println!(
            "GC share grows {:.1}x with JIT [paper: 4.6x, 3% -> 14%]",
            jit / nojit.max(1e-9)
        );
    }
    std::process::exit(h.finish());
}
