//! Table II: the overhead taxonomy.

use qoa_bench::{cli, emit};
use qoa_core::report::Table;
use qoa_model::Category;

fn main() {
    let cli = cli();
    let mut t = Table::new(
        "Table II: sources of performance overhead",
        &["group", "overhead category", "description", "new"],
    );
    for c in Category::OVERHEADS {
        t.row(vec![
            c.group().label().to_string(),
            c.label().to_string(),
            c.description().to_string(),
            if c.is_new_in_paper() { "NEW".into() } else { "".into() },
        ]);
    }
    emit(&cli, &t);
}
