//! Fig. 10: LLC miss rate as a function of nursery size (PyPy w/ JIT,
//! 2 MB last-level cache). The paper's cliff: once the nursery outgrows
//! the cache, the miss rate jumps by roughly 2.4×.

use qoa_bench::{cli, emit, sweep_subset};
use qoa_core::report::{pct, Table};
use qoa_core::runtime::RuntimeConfig;
use qoa_core::sweeps::{format_bytes, nursery_sweep, NURSERY_SIZES_SCALED as NURSERY_SIZES};
use qoa_model::RuntimeKind;
use qoa_uarch::UarchConfig;
use qoa_workloads::FIG14_BENCHMARKS;

fn main() {
    let cli = cli();
    let suite = sweep_subset(&cli, qoa_workloads::python_suite(), &FIG14_BENCHMARKS);
    let rt = RuntimeConfig::new(RuntimeKind::PyPyJit);
    let uarch = UarchConfig::skylake(); // 2 MB LLC

    let mut cols: Vec<String> = vec!["series".into()];
    cols.extend(NURSERY_SIZES.iter().map(|&b| format_bytes(b)));
    let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Fig. 10: LLC miss rate vs nursery size (PyPy w/ JIT, 2MB LLC)",
        &col_refs,
    );

    let mut avg = vec![0.0f64; NURSERY_SIZES.len()];
    for w in &suite {
        eprintln!("sweeping {}...", w.name);
        let pts = nursery_sweep(w, cli.scale, &rt, &uarch, &NURSERY_SIZES)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        for (i, p) in pts.iter().enumerate() {
            avg[i] += p.llc_miss_rate;
        }
    }
    let n = suite.len() as f64;
    let mut row = vec!["LLC miss rate".to_string()];
    row.extend(avg.iter().map(|v| pct(v / n)));
    t.row(row);
    emit(&cli, &t);

    // Compare the best in-cache point against the out-of-cache plateau.
    let small = avg.iter().take(4).cloned().fold(f64::MAX, f64::min) / n;
    let large = avg[NURSERY_SIZES.len() - 1] / n;
    println!(
        "cliff: {} (nursery fits LLC) -> {} (nursery >> LLC) = {:.2}x increase [paper: ~2.4x]",
        pct(small),
        pct(large),
        large / small.max(1e-9)
    );
}
