//! Fig. 10: LLC miss rate as a function of nursery size (PyPy w/ JIT,
//! 2 MB last-level cache). The paper's cliff: once the nursery outgrows
//! the cache, the miss rate jumps by roughly 2.4×.

use qoa_bench::{cell_chaos, cli, emit, harness, prewarm, sweep_subset, NA};
use qoa_core::harness::{nursery_cells, nursery_spec};
use qoa_core::report::{pct, Table};
use qoa_core::runtime::RuntimeConfig;
use qoa_core::sweeps::{format_bytes, NURSERY_SIZES_SCALED as NURSERY_SIZES};
use qoa_model::RuntimeKind;
use qoa_uarch::UarchConfig;
use qoa_workloads::FIG14_BENCHMARKS;

fn main() {
    let cli = cli();
    let mut h = harness(&cli, "fig10");
    let suite = sweep_subset(&cli, qoa_workloads::python_suite(), &FIG14_BENCHMARKS);
    let rt = RuntimeConfig::new(RuntimeKind::PyPyJit);
    let uarch = UarchConfig::skylake(); // 2 MB LLC
    let chaos = cell_chaos(&cli);
    let mut specs = Vec::new();
    for &w in &suite {
        for &n in NURSERY_SIZES.iter() {
            specs.push(nursery_spec(w, cli.scale, &rt, &uarch, n, "", chaos));
        }
    }
    prewarm(&cli, &mut h, specs);

    let mut cols: Vec<String> = vec!["series".into()];
    cols.extend(NURSERY_SIZES.iter().map(|&b| format_bytes(b)));
    let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Fig. 10: LLC miss rate vs nursery size (PyPy w/ JIT, 2MB LLC)",
        &col_refs,
    );

    let mut sum = vec![0.0f64; NURSERY_SIZES.len()];
    let mut count = vec![0usize; NURSERY_SIZES.len()];
    for w in &suite {
        eprintln!("sweeping {}...", w.name);
        let pts = nursery_cells(&mut h, w, cli.scale, &rt, &uarch, &NURSERY_SIZES);
        for (i, p) in pts.iter().enumerate() {
            if let Some(p) = p {
                sum[i] += p.llc_miss_rate;
                count[i] += 1;
            }
        }
    }
    let avg = |i: usize| (count[i] > 0).then(|| sum[i] / count[i] as f64);
    let mut row = vec!["LLC miss rate".to_string()];
    row.extend((0..NURSERY_SIZES.len()).map(|i| avg(i).map_or(NA.into(), pct)));
    t.row(row);
    emit(&cli, &t);

    // Compare the best in-cache point against the out-of-cache plateau.
    let small = (0..4).filter_map(avg).fold(f64::MAX, f64::min);
    let large = avg(NURSERY_SIZES.len() - 1);
    if let (true, Some(large)) = (small < f64::MAX, large) {
        println!(
            "cliff: {} (nursery fits LLC) -> {} (nursery >> LLC) = {:.2}x increase [paper: ~2.4x]",
            pct(small),
            pct(large),
            large / small.max(1e-9)
        );
    }
    std::process::exit(h.finish());
}
