//! `qoa-prof`: the observability driver.
//!
//! Runs one workload under one modeled run-time with full observability
//! on — wall-clock spans around every pipeline stage, guest frame events
//! in the trace, a cycle-domain sampling profile of the replay — and
//! writes any of:
//!
//! * `--trace out.json` — Chrome/Perfetto `trace_events` JSON (load in
//!   `ui.perfetto.dev` or `chrome://tracing`): pid 1 is wall time, pid 2
//!   is simulated cycles.
//! * `--metrics out.prom` — Prometheus text exposition of every
//!   subsystem's counters (VM, heap, JIT, simulation, profiler).
//! * `--folded out.folded` — folded stacks for `inferno-flamegraph` /
//!   `flamegraph.pl`, one `frame;frame;[Category] count` line each.
//!
//! `--check` re-parses everything just written through the crate's own
//! round-trip parsers and verifies the sampled per-category shares agree
//! with the exact Fig. 4 attribution within 2 percentage points; any
//! violation exits nonzero. A journal line (with the metrics snapshot
//! embedded as the v2 `"obs"` field) is recorded under `--journal-dir`.

use qoa_core::journal::{CellKey, CellMetrics, CellOutcome, Journal, Metric};
use qoa_core::runtime::{capture_observed, RuntimeConfig};
use qoa_model::RuntimeKind;
use qoa_obs::bridge::{
    fill_exec_stats, fill_jit_stats, fill_profile, fill_span_histogram, fill_vm_stats,
};
use qoa_obs::profiler::ObsCore;
use qoa_obs::{export_trace, parse_exposition, parse_trace, ObsConfig, Observability};
use qoa_uarch::UarchConfig;
use qoa_workloads::Scale;
use std::path::PathBuf;

#[derive(Debug)]
struct ProfCli {
    workload: String,
    runtime: RuntimeKind,
    scale: Scale,
    sample_every: u64,
    trace: Option<PathBuf>,
    metrics: Option<PathBuf>,
    folded: Option<PathBuf>,
    check: bool,
    journal_dir: PathBuf,
}

impl Default for ProfCli {
    fn default() -> Self {
        ProfCli {
            workload: "go".to_string(),
            runtime: RuntimeKind::CPython,
            scale: Scale::Small,
            sample_every: 4096,
            trace: None,
            metrics: None,
            folded: None,
            check: false,
            journal_dir: PathBuf::from("results"),
        }
    }
}

fn parse_cli() -> ProfCli {
    let mut out = ProfCli::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workload" => out.workload = args.next().unwrap_or_default(),
            "--runtime" => {
                let v = args.next().unwrap_or_default();
                out.runtime = match v.as_str() {
                    "cpython" => RuntimeKind::CPython,
                    "pypy-nojit" => RuntimeKind::PyPyNoJit,
                    "pypy-jit" => RuntimeKind::PyPyJit,
                    "v8" => RuntimeKind::V8,
                    other => panic!("unknown runtime '{other}' (cpython|pypy-nojit|pypy-jit|v8)"),
                };
            }
            "--scale" => {
                let v = args.next().unwrap_or_default();
                out.scale = match v.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    other => panic!("unknown scale '{other}' (tiny|small|full)"),
                };
            }
            "--sample-every" => {
                let v = args.next().unwrap_or_default();
                out.sample_every = v.parse().expect("--sample-every takes a cycle count");
            }
            "--trace" => out.trace = Some(PathBuf::from(args.next().unwrap_or_default())),
            "--metrics" => out.metrics = Some(PathBuf::from(args.next().unwrap_or_default())),
            "--folded" => out.folded = Some(PathBuf::from(args.next().unwrap_or_default())),
            "--check" => out.check = true,
            "--journal-dir" => out.journal_dir = PathBuf::from(args.next().unwrap_or_default()),
            "--help" | "-h" => {
                eprintln!(
                    "flags: --workload NAME  --runtime cpython|pypy-nojit|pypy-jit|v8  \
                     --scale tiny|small|full  --sample-every N  --trace FILE  \
                     --metrics FILE  --folded FILE  --check  --journal-dir DIR"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag '{other}' (try --help)"),
        }
    }
    out
}

fn write_output(path: &PathBuf, what: &str, content: &str) {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| panic!("creating {}: {e}", dir.display()));
        }
    }
    std::fs::write(path, content).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("{what}: {} ({} bytes)", path.display(), content.len());
}

fn main() {
    let cli = parse_cli();
    let workload = qoa_workloads::by_name(&cli.workload)
        .unwrap_or_else(|| panic!("unknown workload '{}'", cli.workload));
    let source = workload.source(cli.scale);

    let obs_cfg = ObsConfig::on().with_sample_every(cli.sample_every);
    let rt = RuntimeConfig::new(cli.runtime).with_observability(obs_cfg);
    let mut obs = Observability::new(obs_cfg);

    eprintln!(
        "profiling {} / {:?} at {:?} scale, sampling every {} cycles...",
        workload.name, cli.runtime, cli.scale, cli.sample_every
    );
    let run = match capture_observed(&source, &rt, &mut obs) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("run failed: {e}");
            std::process::exit(1);
        }
    };

    let uarch = UarchConfig::skylake();
    let report = obs.wall_span("simulate", || {
        let mut core = ObsCore::new(&uarch, cli.sample_every, obs_cfg.ring_capacity);
        run.trace.replay(&mut core);
        core.finish()
    });

    fill_vm_stats(&mut obs.registry, &run.vm);
    fill_jit_stats(&mut obs.registry, &run.jit);
    fill_exec_stats(&mut obs.registry, &report.stats);
    fill_profile(&mut obs.registry, &report.profile);
    fill_span_histogram(&mut obs.registry, &report.spans);

    println!(
        "{}: {} cycles, {} instructions, {} samples over {} stacks ({} spans, {} dropped)",
        workload.name,
        report.stats.cycles,
        report.stats.instructions,
        report.profile.total_samples,
        report.profile.distinct_stacks(),
        obs.wall_spans().len() + report.spans.len(),
        obs.dropped() + report.dropped_spans,
    );

    let mut all_spans = obs.wall_spans();
    all_spans.extend(report.spans.iter().cloned());
    let trace_json = export_trace(&all_spans);
    let prom_text = obs.registry.expose();
    let folded_text = report.profile.folded_output();

    if let Some(path) = &cli.trace {
        write_output(path, "trace", &trace_json);
    }
    if let Some(path) = &cli.metrics {
        write_output(path, "metrics", &prom_text);
    }
    if let Some(path) = &cli.folded {
        write_output(path, "folded stacks", &folded_text);
    }

    // Journal line with the registry snapshot embedded (v2 "obs" field).
    let key = CellKey::new(
        workload.name,
        format!("{:?}", cli.runtime),
        "sample_every",
        cli.sample_every.to_string(),
    );
    let mut metrics = CellMetrics::new();
    metrics.insert("cycles".into(), Metric::Int(report.stats.cycles as i64));
    metrics.insert("instructions".into(), Metric::Int(report.stats.instructions as i64));
    metrics.insert("samples".into(), Metric::Int(report.profile.total_samples as i64));
    let snapshot: CellMetrics = obs
        .registry
        .snapshot()
        .into_iter()
        .map(|(name, value)| (name, Metric::Num(value)))
        .collect();
    let config = format!("scale={:?} sample_every={}", cli.scale, cli.sample_every);
    match Journal::open(&cli.journal_dir, "qoa-prof", config, false) {
        Ok(mut journal) => {
            if let Err(e) = journal.record_with_obs(key, CellOutcome::Ok(metrics), Some(snapshot)) {
                eprintln!("journal write failed (continuing): {e}");
            } else {
                println!("journal: {}", journal.path().display());
            }
        }
        Err(e) => eprintln!("journal open failed (continuing): {e}"),
    }

    if cli.check {
        let mut failures = Vec::new();
        match parse_trace(&trace_json) {
            Ok(spans) => {
                if spans.len() != all_spans.len() {
                    failures.push(format!(
                        "trace round-trip lost spans: {} -> {}",
                        all_spans.len(),
                        spans.len()
                    ));
                }
            }
            Err(e) => failures.push(format!("trace JSON invalid: {e}")),
        }
        match parse_exposition(&prom_text) {
            Ok(exposition) => {
                if exposition.get("qoa_sim_cycles_total") != Some(report.stats.cycles as f64) {
                    failures.push("exposition disagrees on qoa_sim_cycles_total".to_string());
                }
            }
            Err(e) => failures.push(format!("Prometheus exposition invalid: {e}")),
        }
        if folded_text.lines().next().is_none() {
            failures.push("folded output is empty".to_string());
        }
        let sampled = report.profile.category_shares();
        let exact = report.stats.category_shares();
        for (c, &s) in sampled.iter() {
            let d = (s - exact[c]).abs();
            if d > 0.02 {
                failures.push(format!(
                    "category {c:?}: sampled share {:.2}% vs exact {:.2}% (diff {:.2}pp)",
                    s * 100.0,
                    exact[c] * 100.0,
                    d * 100.0
                ));
            }
        }
        if failures.is_empty() {
            println!(
                "check: OK (trace and exposition round-trip; sampled shares within 2pp of exact)"
            );
        } else {
            for f in &failures {
                eprintln!("check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}
