//! qoa-lint: static analysis gate over the bundled workload programs.
//!
//! Compiles, verifies, and lints every benchmark of both suites, then
//! prints the findings. Exit codes: `0` clean, `1` when `--deny warnings`
//! is set and any warning-severity finding fired, `2` when a workload
//! fails to compile or verify (the suite itself is broken).
//!
//! Flags (this binary does not take the figure-harness flags):
//!
//! * `--deny warnings` — exit nonzero on warning-severity findings (the
//!   CI gate).
//! * `--scale tiny|small|full` — workload scale to compile (default
//!   `tiny`; findings are scale-independent for the bundled programs).
//! * `--quiet` — suppress note-severity findings.

use qoa_analysis::{lint, Severity};
use qoa_workloads::Scale;

struct Opts {
    deny_warnings: bool,
    scale: Scale,
    quiet: bool,
}

fn parse_args() -> Opts {
    let mut opts = Opts { deny_warnings: false, scale: Scale::Tiny, quiet: false };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => match args.next().as_deref() {
                Some("warnings") => opts.deny_warnings = true,
                other => die(&format!("--deny takes `warnings`, got {other:?}")),
            },
            "--scale" => {
                opts.scale = match args.next().as_deref() {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("full") => Scale::Full,
                    other => die(&format!("unknown scale {other:?} (tiny|small|full)")),
                };
            }
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => {
                eprintln!("flags: --deny warnings  --scale tiny|small|full  --quiet");
                std::process::exit(0);
            }
            other => die(&format!("unknown flag '{other}' (try --help)")),
        }
    }
    opts
}

fn die(msg: &str) -> ! {
    eprintln!("qoa-lint: {msg}");
    std::process::exit(2);
}

fn main() {
    let opts = parse_args();
    let suites: [(&str, &[qoa_workloads::Workload]); 2] = [
        ("python", qoa_workloads::python_suite()),
        ("jetstream", qoa_workloads::jetstream_suite()),
    ];
    let mut warnings = 0usize;
    let mut notes = 0usize;
    let mut broken = 0usize;
    for (suite_name, suite) in suites {
        for w in suite {
            let src = w.source(opts.scale);
            let code = match qoa_frontend::compile(&src) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error[compile] {suite_name}/{}: {e}", w.name);
                    broken += 1;
                    continue;
                }
            };
            let lints = match lint::lint_module(&code) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("error[verify] {suite_name}/{}: {e}", w.name);
                    broken += 1;
                    continue;
                }
            };
            for l in lints {
                match l.severity {
                    Severity::Warning => warnings += 1,
                    Severity::Note => notes += 1,
                }
                if l.severity == Severity::Warning || !opts.quiet {
                    println!("{suite_name}/{}: {l}", w.name);
                }
            }
        }
    }
    println!("qoa-lint: {warnings} warning(s), {notes} note(s), {broken} unanalyzable");
    if broken > 0 {
        std::process::exit(2);
    }
    if opts.deny_warnings && warnings > 0 {
        eprintln!("qoa-lint: failing on warnings (--deny warnings)");
        std::process::exit(1);
    }
}
