//! Fig. 4-static: static vs dynamic CPython overhead attribution.
//!
//! The static half weighs every *instruction* equally (the annotator's
//! per-opcode handler profiles, no execution frequencies); the dynamic
//! half is the usual cycle attribution on the simple core. Printing both
//! side by side shows how much of Fig. 4 is loop weighting rather than
//! opcode mix. The same cells also record the check-elision delta: the
//! cycles the verifier's `Verified` token saves over the guarded
//! dispatch path.

use qoa_bench::{cell_chaos, cli, emit, harness, limit, prewarm, NA};
use qoa_core::benchsnap::{write_bench_json, BenchEntry};
use qoa_core::harness::{capture_cell, CellChaos};
use qoa_core::report::Table;
use qoa_core::runtime::RuntimeConfig;
use qoa_core::{Breakdown, CellKey, CellMetrics, Harness, Metric, QoaError, SupervisedCell};
use qoa_model::{Category, CategoryMap, RuntimeKind};
use qoa_uarch::UarchConfig;
use qoa_workloads::{Scale, Workload};

/// Static and dynamic shares plus the guard-elision cycle pair for one
/// benchmark.
struct StaticCell {
    name: String,
    stat: CategoryMap<f64>,
    dynamic: CategoryMap<f64>,
    cycles_elided: u64,
    cycles_guarded: u64,
}

fn static_key(w: &Workload, rt: &RuntimeConfig) -> CellKey {
    CellKey::new(w.name, format!("{:?}", rt.kind), "static-attribution", "simple-core")
}

fn measure_static(
    w: &Workload,
    scale: Scale,
    rt: RuntimeConfig,
    uarch: &UarchConfig,
    deadline: Option<std::time::Instant>,
    chaos: Option<CellChaos>,
    key: &CellKey,
) -> Result<CellMetrics, QoaError> {
    let src = w.source(scale);
    let code = qoa_frontend::compile(&src)?;
    let stat = qoa_analysis::annotate::static_shares(&code);
    let elided = capture_cell(&src, &rt.with_deadline(deadline), chaos, key)?;
    let dyn_stats = elided.trace.simulate_simple(uarch);
    let b = Breakdown::from_stats(w.name, &dyn_stats);
    let guarded =
        capture_cell(&src, &rt.with_check_elision(false).with_deadline(deadline), chaos, key)?;
    let g_stats = guarded.trace.simulate_simple(uarch);
    let mut m = CellMetrics::new();
    m.insert("cycles.elided".into(), Metric::Int(dyn_stats.cycles as i64));
    m.insert("cycles.guarded".into(), Metric::Int(g_stats.cycles as i64));
    for c in Category::ALL {
        m.insert(format!("static.{c:?}"), Metric::Num(stat[c]));
        m.insert(format!("dynamic.{c:?}"), Metric::Num(b.shares[c]));
        m.insert(format!("delta.{c:?}"), Metric::Num(b.shares[c] - stat[c]));
    }
    Ok(m)
}

fn static_spec(
    w: &'static Workload,
    scale: Scale,
    rt: &RuntimeConfig,
    uarch: &UarchConfig,
    chaos: Option<CellChaos>,
) -> SupervisedCell<CellMetrics> {
    let key = static_key(w, rt);
    let rt = *rt;
    let uarch = uarch.clone();
    let mkey = key.clone();
    SupervisedCell::new(key, move |deadline| {
        measure_static(w, scale, rt, &uarch, deadline, chaos, &mkey)
    })
}

fn static_cell(
    h: &mut Harness,
    w: &Workload,
    scale: Scale,
    rt: &RuntimeConfig,
    uarch: &UarchConfig,
) -> Option<StaticCell> {
    let key = static_key(w, rt);
    let mkey = key.clone();
    let metrics =
        h.cell(key, |deadline| measure_static(w, scale, *rt, uarch, deadline, None, &mkey))?;
    let share = |prefix: &str| {
        CategoryMap::from_fn(|c| {
            metrics.get(&format!("{prefix}.{c:?}")).and_then(Metric::as_f64).unwrap_or(0.0)
        })
    };
    Some(StaticCell {
        name: w.name.to_string(),
        stat: share("static"),
        dynamic: share("dynamic"),
        cycles_elided: metrics.get("cycles.elided")?.as_i64()? as u64,
        cycles_guarded: metrics.get("cycles.guarded")?.as_i64()? as u64,
    })
}

/// `12.3/14.1` — static share / dynamic share, in percent.
fn pair(s: f64, d: f64) -> String {
    format!("{:.1}/{:.1}", s * 100.0, d * 100.0)
}

fn panel(title: &str, cats: &[Category], rows: &[StaticCell]) -> Table {
    let mut cols: Vec<&str> = vec!["benchmark"];
    let labels: Vec<String> = cats.iter().map(|c| c.label().to_string()).collect();
    cols.extend(labels.iter().map(|s| s.as_str()));
    let mut t = Table::new(title, &cols);
    for r in rows {
        let mut cells = vec![r.name.clone()];
        cells.extend(cats.iter().map(|&c| pair(r.stat[c], r.dynamic[c])));
        t.row(cells);
    }
    let n = rows.len().max(1) as f64;
    let mut cells = vec!["AVG".to_string()];
    cells.extend(cats.iter().map(|&c| {
        let s = rows.iter().map(|r| r.stat[c]).sum::<f64>() / n;
        let d = rows.iter().map(|r| r.dynamic[c]).sum::<f64>() / n;
        pair(s, d)
    }));
    t.row(cells);
    t
}

// ---- `--opt` mode: the static optimization pipeline ------------------------

/// Everything rendered for one benchmark of an `--opt` run.
struct OptCell {
    name: String,
    stat_before: CategoryMap<f64>,
    stat_after: CategoryMap<f64>,
    dyn_before: CategoryMap<f64>,
    dyn_after: CategoryMap<f64>,
    /// Simulated cycles per opt level (index = level).
    cycles: Vec<u64>,
    /// Wall nanos per opt level (BENCH snapshot only — never printed).
    wall: Vec<u64>,
    folded: u64,
    dce: u64,
    promoted: u64,
    fused: u64,
}

fn opt_key(w: &Workload) -> CellKey {
    CellKey::new(w.name, "CPython", "opt-pipeline", "simple-core")
}

/// Measures one benchmark across opt levels `0..=opt_level`: per-pass
/// rewrite counts, predicted (static) and measured (dynamic) category
/// shares before/after, simulated cycles and wall time per level — and
/// enforces the semantics-preservation oracle (identical `result` and
/// output at every level) inside the cell, so a violation is a failed
/// cell, not a silently wrong row.
#[allow(clippy::too_many_arguments)]
fn measure_opt(
    w: &Workload,
    scale: Scale,
    rt: RuntimeConfig,
    opt_level: u8,
    uarch: &UarchConfig,
    deadline: Option<std::time::Instant>,
    chaos: Option<CellChaos>,
    key: &CellKey,
) -> Result<CellMetrics, QoaError> {
    let src = w.source(scale);
    let code = qoa_frontend::compile(&src)?;
    let stat_before = qoa_analysis::annotate::static_shares(&code);
    let (opt_code, report) = qoa_analysis::optimize(&code, opt_level)?;
    let stat_after = qoa_analysis::annotate::static_shares(opt_code.get());

    let mut m = CellMetrics::new();
    m.insert("opt.folded".into(), Metric::Int(report.folded as i64));
    m.insert("opt.dce".into(), Metric::Int(report.dce_removed as i64));
    m.insert("opt.promoted".into(), Metric::Int(report.promoted as i64));
    m.insert("opt.fused".into(), Metric::Int(report.fused as i64));
    for c in Category::ALL {
        m.insert(format!("static.before.{c:?}"), Metric::Num(stat_before[c]));
        m.insert(format!("static.after.{c:?}"), Metric::Num(stat_after[c]));
    }

    let mut baseline: Option<(Option<String>, Vec<String>)> = None;
    for level in 0..=opt_level {
        let rtl = rt.with_opt_level(level).with_deadline(deadline);
        let t = std::time::Instant::now();
        let run = capture_cell(&src, &rtl, chaos, key)?;
        let wall = t.elapsed().as_nanos() as u64;
        let stats = run.trace.simulate_simple(uarch);
        m.insert(format!("cycles.opt{level}"), Metric::Int(stats.cycles as i64));
        m.insert(format!("wall.opt{level}"), Metric::Int(wall as i64));
        m.insert(format!("bytecodes.opt{level}"), Metric::Int(run.vm.bytecodes as i64));
        if level == 0 || level == opt_level {
            let tag = if level == 0 { "before" } else { "after" };
            let b = Breakdown::from_stats(w.name, &stats);
            for c in Category::ALL {
                m.insert(format!("dynamic.{tag}.{c:?}"), Metric::Num(b.shares[c]));
            }
        }
        match &baseline {
            None => baseline = Some((run.result.clone(), run.output.clone())),
            Some((r0, o0)) => {
                if run.result != *r0 || run.output != *o0 {
                    return Err(QoaError::Guest {
                        message: format!(
                            "semantics-preservation oracle violated at opt level {level}: \
                             result {:?} vs {:?}",
                            run.result, r0
                        ),
                        line: 0,
                    });
                }
            }
        }
    }
    Ok(m)
}

fn opt_spec(
    w: &'static Workload,
    scale: Scale,
    rt: &RuntimeConfig,
    opt_level: u8,
    uarch: &UarchConfig,
    chaos: Option<CellChaos>,
) -> SupervisedCell<CellMetrics> {
    let key = opt_key(w);
    let rt = *rt;
    let uarch = uarch.clone();
    let mkey = key.clone();
    SupervisedCell::new(key, move |deadline| {
        measure_opt(w, scale, rt, opt_level, &uarch, deadline, chaos, &mkey)
    })
}

fn opt_cell(
    h: &mut Harness,
    w: &Workload,
    scale: Scale,
    rt: &RuntimeConfig,
    opt_level: u8,
    uarch: &UarchConfig,
) -> Option<OptCell> {
    let key = opt_key(w);
    let mkey = key.clone();
    let metrics = h.cell(key, |deadline| {
        measure_opt(w, scale, *rt, opt_level, uarch, deadline, None, &mkey)
    })?;
    let share = |prefix: &str| {
        CategoryMap::from_fn(|c| {
            metrics.get(&format!("{prefix}.{c:?}")).and_then(Metric::as_f64).unwrap_or(0.0)
        })
    };
    let per_level = |prefix: &str| -> Vec<u64> {
        (0..=opt_level)
            .map(|l| {
                metrics
                    .get(&format!("{prefix}.opt{l}"))
                    .and_then(Metric::as_i64)
                    .unwrap_or(0) as u64
            })
            .collect()
    };
    let count = |k: &str| metrics.get(k).and_then(Metric::as_i64).unwrap_or(0) as u64;
    Some(OptCell {
        name: w.name.to_string(),
        stat_before: share("static.before"),
        stat_after: share("static.after"),
        dyn_before: share("dynamic.before"),
        dyn_after: share("dynamic.after"),
        cycles: per_level("cycles"),
        wall: per_level("wall"),
        folded: count("opt.folded"),
        dce: count("opt.dce"),
        promoted: count("opt.promoted"),
        fused: count("opt.fused"),
    })
}

/// The categories the pipeline targets, for the before/after panels.
const OPT_CATS: [Category; 5] = [
    Category::Dispatch,
    Category::NameResolution,
    Category::Stack,
    Category::RegTransfer,
    Category::GarbageCollection,
];

fn opt_panel(
    title: &str,
    rows: &[OptCell],
    f: impl Fn(&OptCell, Category) -> (f64, f64),
) -> Table {
    let mut cols: Vec<&str> = vec!["benchmark"];
    let labels: Vec<String> = OPT_CATS.iter().map(|c| c.label().to_string()).collect();
    cols.extend(labels.iter().map(|s| s.as_str()));
    let mut t = Table::new(title, &cols);
    for r in rows {
        let mut cells = vec![r.name.clone()];
        cells.extend(OPT_CATS.iter().map(|&c| {
            let (b, a) = f(r, c);
            pair(b, a)
        }));
        t.row(cells);
    }
    let n = rows.len().max(1) as f64;
    let mut cells = vec!["AVG".to_string()];
    cells.extend(OPT_CATS.iter().map(|&c| {
        let b = rows.iter().map(|r| f(r, c).0).sum::<f64>() / n;
        let a = rows.iter().map(|r| f(r, c).1).sum::<f64>() / n;
        pair(b, a)
    }));
    t.row(cells);
    t
}

fn opt_mode(cli: &qoa_bench::Cli) -> ! {
    let opt_level = cli.opt_level.min(qoa_analysis::MAX_OPT_LEVEL);
    let mut h = harness(cli, "fig04-static-opt");
    // Both suites: the oracle and the cycle table cover all 85 workloads.
    let mut suite = limit(cli, qoa_workloads::python_suite());
    suite.extend(limit(cli, qoa_workloads::jetstream_suite()));
    let rt = RuntimeConfig::new(RuntimeKind::CPython);
    let uarch = UarchConfig::skylake();
    let chaos = cell_chaos(cli);
    prewarm(
        cli,
        &mut h,
        suite.iter().map(|&w| opt_spec(w, cli.scale, &rt, opt_level, &uarch, chaos)).collect(),
    );
    let mut rows: Vec<OptCell> = Vec::new();
    for w in &suite {
        eprintln!("running {} (opt 0..={opt_level})...", w.name);
        if let Some(r) = opt_cell(&mut h, w, cli.scale, &rt, opt_level, &uarch) {
            rows.push(r);
        }
    }
    if rows.is_empty() {
        eprintln!("no benchmark produced an optimization report");
        std::process::exit(h.finish().max(1));
    }

    emit(
        cli,
        &opt_panel(
            &format!(
                "Fig. 4-static --opt (a): predicted static shares, opt 0 -> {opt_level} (% of modeled micro-ops)"
            ),
            &rows,
            |r, c| (r.stat_before[c], r.stat_after[c]),
        ),
    );
    emit(
        cli,
        &opt_panel(
            &format!(
                "Fig. 4-static --opt (b): measured dynamic shares, opt 0 -> {opt_level} (% of cycles, CPython)"
            ),
            &rows,
            |r, c| (r.dyn_before[c], r.dyn_after[c]),
        ),
    );

    // Simulated-cycle deltas with the per-pass rewrite counts. Wall time
    // is deliberately absent from stdout (host-dependent); it lands in
    // the BENCH snapshot below.
    let mut t = Table::new(
        format!("Fig. 4-static --opt (c): simulated cycles by opt level (0..={opt_level})"),
        &["benchmark", "cycles@0", &format!("cycles@{opt_level}"), "speedup", "folded", "dce", "promoted", "fused"],
    );
    for r in &rows {
        let c0 = r.cycles[0];
        let cn = *r.cycles.last().unwrap_or(&0);
        t.row(vec![
            r.name.clone(),
            c0.to_string(),
            cn.to_string(),
            if cn > 0 { format!("{:.3}x", c0 as f64 / cn as f64) } else { NA.into() },
            r.folded.to_string(),
            r.dce.to_string(),
            r.promoted.to_string(),
            r.fused.to_string(),
        ]);
    }
    let tot0: u64 = rows.iter().map(|r| r.cycles[0]).sum();
    let totn: u64 = rows.iter().map(|r| *r.cycles.last().unwrap_or(&0)).sum();
    t.row(vec![
        "TOTAL".into(),
        tot0.to_string(),
        totn.to_string(),
        if totn > 0 { format!("{:.3}x", tot0 as f64 / totn as f64) } else { NA.into() },
        rows.iter().map(|r| r.folded).sum::<u64>().to_string(),
        rows.iter().map(|r| r.dce).sum::<u64>().to_string(),
        rows.iter().map(|r| r.promoted).sum::<u64>().to_string(),
        rows.iter().map(|r| r.fused).sum::<u64>().to_string(),
    ]);
    emit(cli, &t);

    let n = rows.len() as f64;
    let avg = |f: &dyn Fn(&OptCell) -> f64| rows.iter().map(f).sum::<f64>() / n;
    println!("measured share reductions (dynamic, opt 0 -> {opt_level}, avg):");
    for c in [Category::Dispatch, Category::NameResolution] {
        let b = avg(&|r: &OptCell| r.dyn_before[c]);
        let a = avg(&|r: &OptCell| r.dyn_after[c]);
        println!("  {:<22} {:.1}% -> {:.1}% ({:+.1} pp)", c.label(), b * 100.0, a * 100.0, (a - b) * 100.0);
    }
    // Shares are relative, so a category whose neighbors shrink can gain
    // share while losing cycles; the absolute totals are the honest form
    // of the dispatch claim.
    println!("measured category cycle reductions (opt 0 -> {opt_level}, suite totals):");
    for c in [Category::Dispatch, Category::NameResolution] {
        let b: f64 = rows.iter().map(|r| r.dyn_before[c] * r.cycles[0] as f64).sum();
        let a: f64 =
            rows.iter().map(|r| r.dyn_after[c] * r.cycles[opt_level as usize] as f64).sum();
        println!("  {:<22} {:.0} -> {:.0} cycles ({:+.1}%)", c.label(), b, a, (a - b) / b * 100.0);
    }

    // BENCH snapshot: wall + simulated cycles per workload per opt level.
    let mut entries = Vec::new();
    for r in &rows {
        for level in 0..=opt_level {
            entries.push(BenchEntry {
                class: format!("{}/opt{level}", r.name),
                wall_nanos: r.wall[level as usize],
                cycles: r.cycles[level as usize],
            });
        }
    }
    match write_bench_json(&cli.journal_dir, "opt", "fig04-static", cli.seed, &entries) {
        Ok(path) => eprintln!("bench snapshot: {}", path.display()),
        Err(e) => {
            eprintln!("bench snapshot failed: {e}");
            std::process::exit(h.finish().max(1));
        }
    }
    std::process::exit(h.finish());
}

fn main() {
    let cli = cli();
    if cli.opt {
        opt_mode(&cli);
    }
    let mut h = harness(&cli, "fig04-static");
    let suite = limit(&cli, qoa_workloads::python_suite());
    let rt = RuntimeConfig::new(RuntimeKind::CPython);
    let uarch = UarchConfig::skylake();
    let chaos = cell_chaos(&cli);
    prewarm(
        &cli,
        &mut h,
        suite.iter().map(|&w| static_spec(w, cli.scale, &rt, &uarch, chaos)).collect(),
    );
    let mut rows: Vec<StaticCell> = Vec::new();
    for w in &suite {
        eprintln!("running {}...", w.name);
        if let Some(r) = static_cell(&mut h, w, cli.scale, &rt, &uarch) {
            rows.push(r);
        }
    }
    if rows.is_empty() {
        eprintln!("no benchmark produced an attribution");
        std::process::exit(h.finish().max(1));
    }

    emit(
        &cli,
        &panel(
            "Fig. 4-static (a): language features (static/dynamic % of cycles, CPython)",
            &Category::LANGUAGE_FEATURES,
            &rows,
        ),
    );
    emit(
        &cli,
        &panel(
            "Fig. 4-static (b): interpreter operations (static/dynamic % of cycles, CPython)",
            &Category::INTERPRETER_OPERATIONS,
            &rows,
        ),
    );

    // Where execution frequency moves the picture the most.
    let n = rows.len() as f64;
    let mut deltas: Vec<(Category, f64)> = Category::ALL
        .iter()
        .map(|&c| (c, rows.iter().map(|r| r.dynamic[c] - r.stat[c]).sum::<f64>() / n))
        .collect();
    deltas.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()));
    println!("largest static-vs-dynamic share deltas (dynamic - static, avg):");
    for (c, d) in deltas.iter().take(5) {
        println!("  {:<22} {:+.1} pp", c.label(), d * 100.0);
    }

    // Check-elision headline: cycles on the guarded dispatch path vs the
    // verified (guard-free) path.
    let elided: u64 = rows.iter().map(|r| r.cycles_elided).sum();
    let guarded: u64 = rows.iter().map(|r| r.cycles_guarded).sum();
    if elided > 0 {
        println!(
            "dispatch guard cost: {:.2}% of cycles (verified elision speedup {:.3}x)",
            (guarded as f64 / elided as f64 - 1.0) * 100.0,
            guarded as f64 / elided as f64
        );
    }
    std::process::exit(h.finish());
}
