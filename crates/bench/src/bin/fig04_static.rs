//! Fig. 4-static: static vs dynamic CPython overhead attribution.
//!
//! The static half weighs every *instruction* equally (the annotator's
//! per-opcode handler profiles, no execution frequencies); the dynamic
//! half is the usual cycle attribution on the simple core. Printing both
//! side by side shows how much of Fig. 4 is loop weighting rather than
//! opcode mix. The same cells also record the check-elision delta: the
//! cycles the verifier's `Verified` token saves over the guarded
//! dispatch path.

use qoa_bench::{cell_chaos, cli, emit, harness, limit, prewarm};
use qoa_core::harness::{capture_cell, CellChaos};
use qoa_core::report::Table;
use qoa_core::runtime::RuntimeConfig;
use qoa_core::{Breakdown, CellKey, CellMetrics, Harness, Metric, QoaError, SupervisedCell};
use qoa_model::{Category, CategoryMap, RuntimeKind};
use qoa_uarch::UarchConfig;
use qoa_workloads::{Scale, Workload};

/// Static and dynamic shares plus the guard-elision cycle pair for one
/// benchmark.
struct StaticCell {
    name: String,
    stat: CategoryMap<f64>,
    dynamic: CategoryMap<f64>,
    cycles_elided: u64,
    cycles_guarded: u64,
}

fn static_key(w: &Workload, rt: &RuntimeConfig) -> CellKey {
    CellKey::new(w.name, format!("{:?}", rt.kind), "static-attribution", "simple-core")
}

fn measure_static(
    w: &Workload,
    scale: Scale,
    rt: RuntimeConfig,
    uarch: &UarchConfig,
    deadline: Option<std::time::Instant>,
    chaos: Option<CellChaos>,
    key: &CellKey,
) -> Result<CellMetrics, QoaError> {
    let src = w.source(scale);
    let code = qoa_frontend::compile(&src)?;
    let stat = qoa_analysis::annotate::static_shares(&code);
    let elided = capture_cell(&src, &rt.with_deadline(deadline), chaos, key)?;
    let dyn_stats = elided.trace.simulate_simple(uarch);
    let b = Breakdown::from_stats(w.name, &dyn_stats);
    let guarded =
        capture_cell(&src, &rt.with_check_elision(false).with_deadline(deadline), chaos, key)?;
    let g_stats = guarded.trace.simulate_simple(uarch);
    let mut m = CellMetrics::new();
    m.insert("cycles.elided".into(), Metric::Int(dyn_stats.cycles as i64));
    m.insert("cycles.guarded".into(), Metric::Int(g_stats.cycles as i64));
    for c in Category::ALL {
        m.insert(format!("static.{c:?}"), Metric::Num(stat[c]));
        m.insert(format!("dynamic.{c:?}"), Metric::Num(b.shares[c]));
        m.insert(format!("delta.{c:?}"), Metric::Num(b.shares[c] - stat[c]));
    }
    Ok(m)
}

fn static_spec(
    w: &'static Workload,
    scale: Scale,
    rt: &RuntimeConfig,
    uarch: &UarchConfig,
    chaos: Option<CellChaos>,
) -> SupervisedCell<CellMetrics> {
    let key = static_key(w, rt);
    let rt = *rt;
    let uarch = uarch.clone();
    let mkey = key.clone();
    SupervisedCell::new(key, move |deadline| {
        measure_static(w, scale, rt, &uarch, deadline, chaos, &mkey)
    })
}

fn static_cell(
    h: &mut Harness,
    w: &Workload,
    scale: Scale,
    rt: &RuntimeConfig,
    uarch: &UarchConfig,
) -> Option<StaticCell> {
    let key = static_key(w, rt);
    let mkey = key.clone();
    let metrics =
        h.cell(key, |deadline| measure_static(w, scale, *rt, uarch, deadline, None, &mkey))?;
    let share = |prefix: &str| {
        CategoryMap::from_fn(|c| {
            metrics.get(&format!("{prefix}.{c:?}")).and_then(Metric::as_f64).unwrap_or(0.0)
        })
    };
    Some(StaticCell {
        name: w.name.to_string(),
        stat: share("static"),
        dynamic: share("dynamic"),
        cycles_elided: metrics.get("cycles.elided")?.as_i64()? as u64,
        cycles_guarded: metrics.get("cycles.guarded")?.as_i64()? as u64,
    })
}

/// `12.3/14.1` — static share / dynamic share, in percent.
fn pair(s: f64, d: f64) -> String {
    format!("{:.1}/{:.1}", s * 100.0, d * 100.0)
}

fn panel(title: &str, cats: &[Category], rows: &[StaticCell]) -> Table {
    let mut cols: Vec<&str> = vec!["benchmark"];
    let labels: Vec<String> = cats.iter().map(|c| c.label().to_string()).collect();
    cols.extend(labels.iter().map(|s| s.as_str()));
    let mut t = Table::new(title, &cols);
    for r in rows {
        let mut cells = vec![r.name.clone()];
        cells.extend(cats.iter().map(|&c| pair(r.stat[c], r.dynamic[c])));
        t.row(cells);
    }
    let n = rows.len().max(1) as f64;
    let mut cells = vec!["AVG".to_string()];
    cells.extend(cats.iter().map(|&c| {
        let s = rows.iter().map(|r| r.stat[c]).sum::<f64>() / n;
        let d = rows.iter().map(|r| r.dynamic[c]).sum::<f64>() / n;
        pair(s, d)
    }));
    t.row(cells);
    t
}

fn main() {
    let cli = cli();
    let mut h = harness(&cli, "fig04-static");
    let suite = limit(&cli, qoa_workloads::python_suite());
    let rt = RuntimeConfig::new(RuntimeKind::CPython);
    let uarch = UarchConfig::skylake();
    let chaos = cell_chaos(&cli);
    prewarm(
        &cli,
        &mut h,
        suite.iter().map(|&w| static_spec(w, cli.scale, &rt, &uarch, chaos)).collect(),
    );
    let mut rows: Vec<StaticCell> = Vec::new();
    for w in &suite {
        eprintln!("running {}...", w.name);
        if let Some(r) = static_cell(&mut h, w, cli.scale, &rt, &uarch) {
            rows.push(r);
        }
    }
    if rows.is_empty() {
        eprintln!("no benchmark produced an attribution");
        std::process::exit(h.finish().max(1));
    }

    emit(
        &cli,
        &panel(
            "Fig. 4-static (a): language features (static/dynamic % of cycles, CPython)",
            &Category::LANGUAGE_FEATURES,
            &rows,
        ),
    );
    emit(
        &cli,
        &panel(
            "Fig. 4-static (b): interpreter operations (static/dynamic % of cycles, CPython)",
            &Category::INTERPRETER_OPERATIONS,
            &rows,
        ),
    );

    // Where execution frequency moves the picture the most.
    let n = rows.len() as f64;
    let mut deltas: Vec<(Category, f64)> = Category::ALL
        .iter()
        .map(|&c| (c, rows.iter().map(|r| r.dynamic[c] - r.stat[c]).sum::<f64>() / n))
        .collect();
    deltas.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()));
    println!("largest static-vs-dynamic share deltas (dynamic - static, avg):");
    for (c, d) in deltas.iter().take(5) {
        println!("  {:<22} {:+.1} pp", c.label(), d * 100.0);
    }

    // Check-elision headline: cycles on the guarded dispatch path vs the
    // verified (guard-free) path.
    let elided: u64 = rows.iter().map(|r| r.cycles_elided).sum();
    let guarded: u64 = rows.iter().map(|r| r.cycles_guarded).sum();
    if elided > 0 {
        println!(
            "dispatch guard cost: {:.2}% of cycles (verified elision speedup {:.3}x)",
            (guarded as f64 / elided as f64 - 1.0) * 100.0,
            guarded as f64 / elided as f64
        );
    }
    std::process::exit(h.finish());
}
