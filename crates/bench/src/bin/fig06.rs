//! Fig. 6: C function call overhead for the V8-preset run-time over the
//! JetStream-analog suite (paper average: 5.6%).

use qoa_bench::{cell_chaos, cli, emit, harness, limit, prewarm, NA};
use qoa_core::harness::{breakdown_cell, breakdown_spec};
use qoa_core::report::{pct, Table};
use qoa_core::runtime::RuntimeConfig;
use qoa_model::{Category, RuntimeKind};
use qoa_uarch::UarchConfig;

fn main() {
    let cli = cli();
    let mut h = harness(&cli, "fig06");
    let suite = limit(&cli, qoa_workloads::jetstream_suite());
    let mut t = Table::new(
        "Fig. 6: C function call overhead, V8 preset (% of execution cycles)",
        &["benchmark", "c-function-call"],
    );
    let rt = RuntimeConfig::new(RuntimeKind::V8);
    let uarch = UarchConfig::skylake();
    let chaos = cell_chaos(&cli);
    prewarm(
        &cli,
        &mut h,
        suite.iter().map(|&w| breakdown_spec(w, cli.scale, &rt, &uarch, chaos)).collect(),
    );
    let mut shares = Vec::new();
    for w in &suite {
        eprintln!("running {}...", w.name);
        match breakdown_cell(&mut h, w, cli.scale, &rt, &uarch) {
            Some(b) => {
                shares.push(b.shares[Category::CFunctionCall]);
                t.row(vec![w.name.to_string(), pct(b.shares[Category::CFunctionCall])]);
            }
            None => {
                t.row(vec![w.name.to_string(), NA.into()]);
            }
        }
    }
    if shares.is_empty() {
        emit(&cli, &t);
        std::process::exit(h.finish().max(1));
    }
    let geomean = (shares.iter().map(|s| s.max(1e-6).ln()).sum::<f64>()
        / shares.len() as f64)
        .exp();
    let mean = shares.iter().sum::<f64>() / shares.len() as f64;
    t.row(vec!["GEOMEAN".into(), pct(geomean)]);
    emit(&cli, &t);
    println!("arithmetic mean {} [paper avg: 5.6%]", pct(mean));
    std::process::exit(h.finish());
}
