//! Fig. 7: CPI under microarchitecture parameter sweeps — average lines
//! for CPython, PyPy w/o JIT and PyPy w/ JIT, with the PyPy execution
//! additionally split into bytecode-interpreter / GC / JIT-code phases.
//!
//! Each (benchmark, run-time) trace is captured once and replayed through
//! the OOO core at every sweep point. Defaults to the paper's Fig. 8
//! benchmark subset; pass `--all` for the full 48.

use qoa_bench::{cli, emit, sweep_subset, Cli};
use qoa_core::report::{f3, Table};
use qoa_core::runtime::{capture, RuntimeConfig};
use qoa_core::sweeps::{sweep_trace, SweepParam, SCALED_DEFAULT_NURSERY};
use qoa_model::{Phase, RuntimeKind};
use qoa_uarch::{TraceBuffer, UarchConfig};
use qoa_workloads::FIG8_BENCHMARKS;

struct Captured {
    kind: RuntimeKind,
    traces: Vec<TraceBuffer>,
}

fn main() {
    let cli: Cli = cli();
    let suite = sweep_subset(&cli, qoa_workloads::python_suite(), &FIG8_BENCHMARKS);
    eprintln!(
        "capturing {} benchmarks x 3 runtimes (this is the expensive part)...",
        suite.len()
    );
    let runtimes = [RuntimeKind::CPython, RuntimeKind::PyPyNoJit, RuntimeKind::PyPyJit];
    let captured: Vec<Captured> = runtimes
        .iter()
        .map(|&kind| {
            let rt = RuntimeConfig::new(kind).with_nursery(SCALED_DEFAULT_NURSERY);
            let traces = suite
                .iter()
                .map(|w| {
                    capture(&w.source(cli.scale), &rt)
                        .unwrap_or_else(|e| panic!("{} on {kind}: {e}", w.name))
                        .trace
                })
                .collect();
            Captured { kind, traces }
        })
        .collect();

    let base = UarchConfig::skylake();
    for param in SweepParam::ALL {
        let values = param.values();
        let mut cols: Vec<String> = vec!["series".into()];
        cols.extend(values.iter().map(|&v| param.format_value(v)));
        let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(format!("Fig. 7: CPI vs {}", param.label()), &col_refs);

        for c in &captured {
            // Average CPI across benchmarks at each sweep point.
            let mut avg = vec![0.0f64; values.len()];
            let mut phase_interp = vec![0.0f64; values.len()];
            let mut phase_gc = vec![0.0f64; values.len()];
            let mut phase_jit = vec![0.0f64; values.len()];
            for trace in &c.traces {
                let pts = sweep_trace(trace, param, &base);
                for (i, p) in pts.iter().enumerate() {
                    avg[i] += p.cpi;
                    phase_interp[i] += p.phase_cpi[Phase::Interpreter];
                    phase_gc[i] += p.phase_cpi[Phase::GcMinor] + p.phase_cpi[Phase::GcMajor];
                    phase_jit[i] += p.phase_cpi[Phase::JitCode];
                }
            }
            let n = c.traces.len() as f64;
            let mut row = vec![c.kind.label().to_string()];
            row.extend(avg.iter().map(|v| f3(v / n)));
            t.row(row);
            if c.kind == RuntimeKind::PyPyJit {
                for (label, series) in [
                    ("  Bytecode Interpreter", &phase_interp),
                    ("  Garbage Collection", &phase_gc),
                    ("  JIT Compiled Code", &phase_jit),
                ] {
                    let mut row = vec![label.to_string()];
                    row.extend(series.iter().map(|v| f3(v / n)));
                    t.row(row);
                }
            }
        }
        emit(&cli, &t);
    }
}
