//! Fig. 7: CPI under microarchitecture parameter sweeps — average lines
//! for CPython, PyPy w/o JIT and PyPy w/ JIT, with the PyPy execution
//! additionally split into bytecode-interpreter / GC / JIT-code phases.
//!
//! Each (benchmark, run-time) trace is captured once and replayed through
//! the OOO core at every sweep point. Defaults to the paper's Fig. 8
//! benchmark subset; pass `--all` for the full 48.

use qoa_bench::{cell_chaos, cli, emit, harness, prewarm, sweep_subset, Cli, NA};
use qoa_core::harness::{shared_trace_cache, sweep_param_cell, sweep_param_spec};
use qoa_core::report::{f3, Table};
use qoa_core::runtime::RuntimeConfig;
use qoa_core::sweeps::{SweepParam, SCALED_DEFAULT_NURSERY};
use qoa_model::RuntimeKind;
use qoa_uarch::UarchConfig;
use qoa_workloads::FIG8_BENCHMARKS;

/// Per-(parameter, runtime) accumulated series.
struct Series {
    avg: Vec<f64>,
    interp: Vec<f64>,
    gc: Vec<f64>,
    jit: Vec<f64>,
    count: usize,
}

impl Series {
    fn new(len: usize) -> Self {
        Series {
            avg: vec![0.0; len],
            interp: vec![0.0; len],
            gc: vec![0.0; len],
            jit: vec![0.0; len],
            count: 0,
        }
    }
}

fn main() {
    let cli: Cli = cli();
    let mut h = harness(&cli, "fig07");
    let suite = sweep_subset(&cli, qoa_workloads::python_suite(), &FIG8_BENCHMARKS);
    let runtimes = [RuntimeKind::CPython, RuntimeKind::PyPyNoJit, RuntimeKind::PyPyJit];
    let base = UarchConfig::skylake();

    let chaos = cell_chaos(&cli);
    let mut specs = Vec::new();
    for &kind in &runtimes {
        let rt = RuntimeConfig::new(kind).with_nursery(SCALED_DEFAULT_NURSERY);
        for &w in &suite {
            let cache = shared_trace_cache();
            for &param in SweepParam::ALL.iter() {
                specs.push(sweep_param_spec(w, cli.scale, &rt, &base, param, &cache, chaos));
            }
        }
    }
    prewarm(&cli, &mut h, specs);

    // series[param][runtime]; the capture for a (benchmark, runtime) pair
    // is shared across all six parameters via the trace cache.
    let mut series: Vec<Vec<Series>> = SweepParam::ALL
        .iter()
        .map(|p| runtimes.iter().map(|_| Series::new(p.values().len())).collect())
        .collect();
    for (ri, &kind) in runtimes.iter().enumerate() {
        let rt = RuntimeConfig::new(kind).with_nursery(SCALED_DEFAULT_NURSERY);
        for w in &suite {
            eprintln!("sweeping {} on {kind}...", w.name);
            let mut trace_cache = None;
            for (pi, &param) in SweepParam::ALL.iter().enumerate() {
                let Some(pts) =
                    sweep_param_cell(&mut h, w, cli.scale, &rt, &base, param, &mut trace_cache)
                else {
                    continue;
                };
                let s = &mut series[pi][ri];
                for (i, p) in pts.iter().enumerate() {
                    s.avg[i] += p.cpi;
                    s.interp[i] += p.interp_cpi;
                    s.gc[i] += p.gc_cpi;
                    s.jit[i] += p.jit_cpi;
                }
                s.count += 1;
            }
        }
    }

    for (pi, &param) in SweepParam::ALL.iter().enumerate() {
        let values = param.values();
        let mut cols: Vec<String> = vec!["series".into()];
        cols.extend(values.iter().map(|&v| param.format_value(v)));
        let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(format!("Fig. 7: CPI vs {}", param.label()), &col_refs);
        for (ri, &kind) in runtimes.iter().enumerate() {
            let s = &series[pi][ri];
            let render = |sums: &[f64]| -> Vec<String> {
                sums.iter()
                    .map(|v| if s.count == 0 { NA.into() } else { f3(v / s.count as f64) })
                    .collect()
            };
            let mut row = vec![kind.label().to_string()];
            row.extend(render(&s.avg));
            t.row(row);
            if kind == RuntimeKind::PyPyJit {
                for (label, sums) in [
                    ("  Bytecode Interpreter", &s.interp),
                    ("  Garbage Collection", &s.gc),
                    ("  JIT Compiled Code", &s.jit),
                ] {
                    let mut row = vec![label.to_string()];
                    row.extend(render(sums));
                    t.row(row);
                }
            }
        }
        emit(&cli, &t);
    }
    std::process::exit(h.finish());
}
