//! Fig. 14: per-benchmark normalized execution time across nursery sizes,
//! PyPy **with** JIT, on the paper's eight-benchmark subset.

use qoa_bench::{cli, emit, sweep_subset};
use qoa_core::report::{f3, Table};
use qoa_core::runtime::RuntimeConfig;
use qoa_core::sweeps::{format_bytes, nursery_sweep, NURSERY_SIZES_SCALED as NURSERY_SIZES};
use qoa_model::RuntimeKind;
use qoa_uarch::UarchConfig;
use qoa_workloads::FIG14_BENCHMARKS;

fn main() {
    run(RuntimeKind::PyPyJit, "Fig. 14: normalized execution time vs nursery (PyPy w/ JIT)");
}

pub fn run(kind: RuntimeKind, title: &str) {
    let cli = cli();
    let suite = sweep_subset(&cli, qoa_workloads::python_suite(), &FIG14_BENCHMARKS);
    let rt = RuntimeConfig::new(kind);
    let uarch = UarchConfig::skylake();
    let baseline_idx = NURSERY_SIZES
        .iter()
        .position(|&b| b == (1 << 20))
        .expect("1MB nursery is in the sweep");

    let mut cols: Vec<String> = vec!["benchmark".into()];
    cols.extend(NURSERY_SIZES.iter().map(|&b| format_bytes(b)));
    let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(title, &col_refs);
    for w in &suite {
        eprintln!("sweeping {}...", w.name);
        let pts = nursery_sweep(w, cli.scale, &rt, &uarch, &NURSERY_SIZES)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let base = pts[baseline_idx].cycles.max(1) as f64;
        let mut row = vec![w.name.to_string()];
        row.extend(pts.iter().map(|p| f3(p.cycles as f64 / base)));
        t.row(row);
    }
    emit(&cli, &t);
}
