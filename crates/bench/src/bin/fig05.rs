//! Fig. 5: C function call overhead for the PyPy-model run-time (JIT on),
//! per benchmark, with the geometric mean the paper reports (7.5% avg).

use qoa_bench::{cli, emit, limit};
use qoa_core::attribution::attribute_workload;
use qoa_core::report::{pct, Table};
use qoa_core::runtime::RuntimeConfig;
use qoa_model::{Category, RuntimeKind};
use qoa_uarch::UarchConfig;

fn main() {
    let cli = cli();
    let suite = limit(&cli, qoa_workloads::python_suite());
    let mut t = Table::new(
        "Fig. 5: C function call overhead, PyPy (% of execution cycles)",
        &["benchmark", "c-function-call"],
    );
    let rt = RuntimeConfig::new(RuntimeKind::PyPyJit);
    let uarch = UarchConfig::skylake();
    let mut shares = Vec::new();
    for w in &suite {
        let b = attribute_workload(w, cli.scale, &rt, &uarch)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        shares.push(b.shares[Category::CFunctionCall]);
        t.row(vec![w.name.to_string(), pct(b.shares[Category::CFunctionCall])]);
    }
    let geomean = (shares.iter().map(|s| s.max(1e-6).ln()).sum::<f64>()
        / shares.len() as f64)
        .exp();
    let mean = shares.iter().sum::<f64>() / shares.len() as f64;
    t.row(vec!["GEOMEAN".into(), pct(geomean)]);
    emit(&cli, &t);
    println!("arithmetic mean {} [paper avg: 7.5%]", pct(mean));
}
