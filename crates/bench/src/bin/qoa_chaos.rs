//! `qoa-chaos`: the deterministic fault-injection sweep driver.
//!
//! For every (workload, run-time, seed) cell it measures a fault-free
//! baseline, derives a seeded [`FaultPlan`] whose fault ticks land inside
//! the baseline's bytecode horizon, re-runs the workload under
//! [`capture_chaos`] — checkpoint/restore recovery armed — and asserts
//! the chaos-engine invariants:
//!
//! 1. **No panic escapes**: every cell runs under [`run_isolated`]; a
//!    caught panic is a violation, not a crash.
//! 2. **Typed errors only**: a cell either completes or fails with the
//!    same typed [`QoaError`] kind the baseline produced.
//! 3. **Differential oracle**: any run that completes after injected
//!    faults were recovered must be *byte-identical* to the baseline —
//!    guest result, output, micro-op count, and every counter of the
//!    simulated [`ExecutionStats`](qoa_uarch::ExecutionStats).
//! 4. **Journal stays parseable**: every cell is recorded (v3 `"chaos"`
//!    counters embedded) and the journal is re-opened at the end.
//!
//! JIT run-times additionally get one *degrade-mode* pass per seed:
//! JIT faults deoptimize to the interpreter in place and the run must
//! still complete with the baseline's guest result (the trace is
//! legitimately different, so the oracle is not applied).
//!
//! Aggregated chaos counters are exported through the Prometheus text
//! exposition (`--metrics FILE`), and the exposition is self-checked for
//! the counter families CI gates on. Any violation exits nonzero.

use qoa_chaos::{FaultKind, FaultPlan};
use qoa_core::journal::{CellKey, CellMetrics, CellOutcome, Journal, Metric};
use qoa_core::report::Table;
use qoa_core::runtime::{capture, CapturedRun, RuntimeConfig};
use qoa_core::{
    available_jobs, capture_chaos, fault_kinds_for, oracle_check, run_isolated, run_supervised,
    CellVerdict, ChaosOptions, ChaosOutcome, ExecutorOptions, SupervisedCell,
};
use qoa_model::RuntimeKind;
use qoa_obs::metrics::Registry;
use qoa_obs::parse_exposition;
use qoa_uarch::UarchConfig;
use qoa_workloads::{Scale, Workload};
use std::path::PathBuf;

/// The tier-1 smoke subset: small, allocation- and call-diverse, and fast
/// enough for CI at `tiny` scale.
const SMOKE: [&str; 5] = ["go", "float", "richards", "tuple_gc", "unpack_seq"];

/// Fault points per seeded plan.
const POINTS_PER_PLAN: usize = 3;

#[derive(Debug)]
struct ChaosCli {
    seeds: u64,
    all_workloads: bool,
    only_workload: Option<String>,
    runtimes: Vec<RuntimeKind>,
    scale: Scale,
    checkpoint_every: Option<u64>,
    metrics: Option<PathBuf>,
    journal_dir: PathBuf,
    fresh: bool,
    jobs: usize,
}

impl Default for ChaosCli {
    fn default() -> Self {
        ChaosCli {
            seeds: 4,
            all_workloads: false,
            only_workload: None,
            runtimes: vec![RuntimeKind::CPython, RuntimeKind::PyPyJit],
            scale: Scale::Tiny,
            checkpoint_every: None,
            metrics: None,
            journal_dir: PathBuf::from("results"),
            fresh: false,
            jobs: available_jobs(),
        }
    }
}

fn parse_cli() -> ChaosCli {
    let mut out = ChaosCli::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seeds" => {
                let v = args.next().unwrap_or_default();
                out.seeds = v.parse().expect("--seeds takes a count");
            }
            "--workloads" => {
                let v = args.next().unwrap_or_default();
                out.all_workloads = match v.as_str() {
                    "smoke" => false,
                    "all" => true,
                    other => panic!("unknown workload set '{other}' (smoke|all)"),
                };
            }
            "--workload" => out.only_workload = Some(args.next().unwrap_or_default()),
            "--runtime" => {
                let v = args.next().unwrap_or_default();
                out.runtimes = match v.as_str() {
                    "cpython" => vec![RuntimeKind::CPython],
                    "pypy-nojit" => vec![RuntimeKind::PyPyNoJit],
                    "pypy-jit" => vec![RuntimeKind::PyPyJit],
                    "v8" => vec![RuntimeKind::V8],
                    "all" => RuntimeKind::ALL.to_vec(),
                    other => {
                        panic!("unknown runtime '{other}' (cpython|pypy-nojit|pypy-jit|v8|all)")
                    }
                };
            }
            "--scale" => {
                let v = args.next().unwrap_or_default();
                out.scale = match v.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    other => panic!("unknown scale '{other}' (tiny|small|full)"),
                };
            }
            "--checkpoint-every" => {
                let v = args.next().unwrap_or_default();
                out.checkpoint_every =
                    Some(v.parse().expect("--checkpoint-every takes a bytecode count"));
            }
            "--metrics" => out.metrics = Some(PathBuf::from(args.next().unwrap_or_default())),
            "--journal-dir" => out.journal_dir = PathBuf::from(args.next().unwrap_or_default()),
            "--fresh" => out.fresh = true,
            "--jobs" => {
                let v = args.next().unwrap_or_default();
                out.jobs = v.parse().expect("--jobs takes a thread count");
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --seeds N  --workloads smoke|all  --workload NAME  \
                     --runtime cpython|pypy-nojit|pypy-jit|v8|all  --scale tiny|small|full  \
                     --checkpoint-every N  --metrics FILE  --journal-dir DIR  --fresh  --jobs N"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag '{other}' (try --help)"),
        }
    }
    out
}

fn runtime_label(kind: RuntimeKind) -> &'static str {
    match kind {
        RuntimeKind::CPython => "cpython",
        RuntimeKind::PyPyNoJit => "pypy-nojit",
        RuntimeKind::PyPyJit => "pypy-jit",
        RuntimeKind::V8 => "v8",
    }
}

/// Everything one (workload, runtime) pair produces: journal records in
/// seed order, oracle/typing violations, and the aggregated counters.
/// Pairs run concurrently under the supervised executor; the committed
/// order (submission order) keeps the journal deterministic for any
/// `--jobs` count.
#[derive(Default)]
struct PairReport {
    records: Vec<(CellKey, CellOutcome, CellMetrics)>,
    violations: Vec<String>,
    totals: ChaosOutcome,
    cells: u64,
    recovered_cells: u64,
    degrade_cells: u64,
}

/// One sweep cell's journal outcome plus its chaos counters.
fn record(report: &mut PairReport, key: CellKey, outcome: CellOutcome, chaos: &ChaosOutcome) {
    report.records.push((key, outcome, chaos.to_metrics()));
}

fn ok_metrics(run: &CapturedRun, chaos: &ChaosOutcome) -> CellMetrics {
    let mut m = CellMetrics::new();
    m.insert("bytecodes".into(), Metric::Int(run.vm.bytecodes as i64));
    m.insert("trace_len".into(), Metric::Int(run.trace.len() as i64));
    m.insert("faults_injected".into(), Metric::Int(chaos.faults_injected_total() as i64));
    m.insert("recoveries".into(), Metric::Int(chaos.recoveries_total() as i64));
    m
}

/// The full chaos sweep for one (workload, runtime) pair: fault-free
/// baseline, `seeds` seeded plans, and the JIT degrade passes.
fn run_pair(
    w: &'static Workload,
    kind: RuntimeKind,
    seeds: u64,
    scale: Scale,
    checkpoint_every: Option<u64>,
    uarch: &UarchConfig,
) -> PairReport {
    let mut report = PairReport::default();
    let source = w.source(scale);
    let rt = RuntimeConfig::new(kind);
    let baseline = run_isolated(|| capture(&source, &rt));
    let (horizon, baseline_run) = match &baseline {
        Ok(run) => (run.vm.bytecodes.max(1), Some(run)),
        Err(f) => {
            eprintln!(
                "  {} / {}: baseline failed [{}]; chaos runs must agree",
                w.name,
                runtime_label(kind),
                f.error.kind()
            );
            (1_000_000, None)
        }
    };
    let cadence = checkpoint_every.unwrap_or_else(|| (horizon / 8).max(1024));
    eprintln!("  {} / {} ({} bytecodes)", w.name, runtime_label(kind), horizon);

    for seed in 0..seeds {
        report.cells += 1;
        let cell = format!("{} / {} / seed {}", w.name, runtime_label(kind), seed);
        let plan = FaultPlan::seeded(seed, horizon, POINTS_PER_PLAN, fault_kinds_for(kind));
        let opts = ChaosOptions::new(plan).with_checkpoint_every(cadence);
        let key = CellKey::new(w.name, runtime_label(kind), "seed", seed.to_string());
        match run_isolated(|| capture_chaos(&source, &rt, &opts)) {
            Ok((run, chaos)) => {
                match baseline_run {
                    Some(base) => {
                        if let Some(div) = oracle_check(base, &run, uarch) {
                            report.violations.push(format!("{cell}: oracle violated: {div}"));
                        }
                    }
                    None => report
                        .violations
                        .push(format!("{cell}: completed but the fault-free baseline failed")),
                }
                if chaos.recoveries_total() > 0 {
                    report.recovered_cells += 1;
                }
                record(&mut report, key, CellOutcome::Ok(ok_metrics(&run, &chaos)), &chaos);
                merge(&mut report.totals, &chaos);
            }
            Err(failure) => {
                let kind_tag = failure.error.kind();
                if kind_tag == "panic" {
                    report.violations.push(format!("{cell}: panic escaped: {}", failure.error));
                } else if kind_tag == "injected" {
                    report.violations.push(format!(
                        "{cell}: injected fault surfaced unrecovered: {}",
                        failure.error
                    ));
                } else if let Ok(_base) = &baseline {
                    report.violations.push(format!(
                        "{cell}: failed [{kind_tag}] but the baseline completed: {}",
                        failure.error
                    ));
                } else if let Err(base) = &baseline {
                    if base.error.kind() != kind_tag {
                        report.violations.push(format!(
                            "{cell}: failed [{kind_tag}] but the baseline failed [{}]",
                            base.error.kind()
                        ));
                    }
                }
                let chaos = ChaosOutcome::default();
                record(
                    &mut report,
                    key,
                    CellOutcome::Failed {
                        kind: kind_tag.to_string(),
                        message: failure.error.to_string(),
                        location: failure.error.location().map(str::to_string),
                    },
                    &chaos,
                );
            }
        }

        // Degrade-mode pass: JIT faults deopt in place; the run must
        // still complete with the baseline's guest result.
        if matches!(kind, RuntimeKind::PyPyJit | RuntimeKind::V8) {
            report.degrade_cells += 1;
            let plan = FaultPlan::seeded(
                seed,
                horizon,
                POINTS_PER_PLAN,
                &[FaultKind::JitCompileFault, FaultKind::TraceAbort],
            );
            let opts = ChaosOptions::new(plan).with_checkpoint_every(cadence).with_degrade_jit();
            let key = CellKey::new(w.name, runtime_label(kind), "degrade-seed", seed.to_string());
            match run_isolated(|| capture_chaos(&source, &rt, &opts)) {
                Ok((run, chaos)) => {
                    if let Some(base) = baseline_run {
                        if base.result != run.result {
                            report.violations.push(format!(
                                "{cell} (degrade): guest result diverged: {:?} vs {:?}",
                                base.result, run.result
                            ));
                        }
                    }
                    record(&mut report, key, CellOutcome::Ok(ok_metrics(&run, &chaos)), &chaos);
                    merge(&mut report.totals, &chaos);
                }
                Err(failure) => {
                    let kind_tag = failure.error.kind();
                    if kind_tag == "panic" {
                        report
                            .violations
                            .push(format!("{cell} (degrade): panic escaped: {}", failure.error));
                    } else if baseline.is_ok() {
                        report.violations.push(format!(
                            "{cell} (degrade): failed [{kind_tag}]: {}",
                            failure.error
                        ));
                    }
                    record(
                        &mut report,
                        key,
                        CellOutcome::Failed {
                            kind: kind_tag.to_string(),
                            message: failure.error.to_string(),
                            location: failure.error.location().map(str::to_string),
                        },
                        &ChaosOutcome::default(),
                    );
                }
            }
        }
    }
    report
}

fn main() {
    let cli = parse_cli();
    let uarch = UarchConfig::skylake();
    let suite = qoa_workloads::python_suite();
    let workloads: Vec<&'static Workload> = if let Some(name) = &cli.only_workload {
        suite.iter().filter(|w| w.name == name).collect()
    } else if cli.all_workloads {
        suite.iter().collect()
    } else {
        suite.iter().filter(|w| SMOKE.contains(&w.name)).collect()
    };

    let config = format!("scale={:?} seeds={}", cli.scale, cli.seeds);
    let mut journal = match Journal::open(&cli.journal_dir, "qoa-chaos", config, cli.fresh) {
        Ok(j) => Some(j),
        Err(e) => {
            eprintln!("journal open failed (continuing without): {e}");
            None
        }
    };

    let mut violations: Vec<String> = Vec::new();
    let mut totals = ChaosOutcome::default();
    let mut cells = 0u64;
    let mut recovered_cells = 0u64;
    let mut degrade_cells = 0u64;

    eprintln!(
        "chaos sweep: {} workloads x {} runtimes x {} seeds at {:?} scale ({} jobs)",
        workloads.len(),
        cli.runtimes.len(),
        cli.seeds,
        cli.scale,
        cli.jobs.max(1)
    );

    // Fan the (workload, runtime) pairs out over the supervised executor.
    // A pair's report is self-contained; the in-order commit makes the
    // journal and the violation list identical for any jobs count.
    let mut specs = Vec::new();
    for &w in &workloads {
        for &kind in &cli.runtimes {
            let key =
                CellKey::new(w.name, runtime_label(kind), "chaos-pair", format!("{:?}", cli.scale));
            let seeds = cli.seeds;
            let scale = cli.scale;
            let checkpoint_every = cli.checkpoint_every;
            let uarch = uarch.clone();
            specs.push(SupervisedCell::new(key, move |_deadline| {
                Ok(run_pair(w, kind, seeds, scale, checkpoint_every, &uarch))
            }));
        }
    }
    let (committed, _stats) = run_supervised(specs, &ExecutorOptions::new(cli.jobs.max(1)));
    for c in committed {
        match c.verdict {
            CellVerdict::Ok { value: rep, .. } => {
                for (key, outcome, chaos_metrics) in rep.records {
                    if let Some(j) = &mut journal {
                        if let Err(e) = j.record_with_chaos(key, outcome, Some(chaos_metrics)) {
                            eprintln!("journal write failed (continuing): {e}");
                        }
                    }
                }
                violations.extend(rep.violations);
                merge(&mut totals, &rep.totals);
                cells += rep.cells;
                recovered_cells += rep.recovered_cells;
                degrade_cells += rep.degrade_cells;
            }
            CellVerdict::Failed { kind, message, .. } => {
                violations.push(format!("{}: pair sweep failed [{kind}]: {message}", c.key));
            }
            CellVerdict::Shed { reason } => {
                violations.push(format!("{}: pair sweep shed ({})", c.key, reason.name()));
            }
            CellVerdict::Lost { .. } => {
                violations.push(format!("{}: pair sweep lost to a hung worker", c.key));
            }
        }
    }

    // Invariant 4: the journal must still parse after the sweep.
    if let Some(j) = journal.take() {
        let path = j.path().to_path_buf();
        let config = format!("scale={:?} seeds={}", cli.scale, cli.seeds);
        drop(j);
        match Journal::open(&cli.journal_dir, "qoa-chaos", config, false) {
            Ok(j) => println!("journal: {} ({} lines parse)", path.display(), j.len()),
            Err(e) => violations.push(format!("journal no longer parses: {e}")),
        }
    }

    // Export the aggregated counters and self-check the exposition.
    let mut reg = Registry::new();
    totals.export(&mut reg);
    let exposition = reg.expose();
    for name in [
        "qoa_chaos_faults_injected_total",
        "qoa_chaos_recoveries_total",
        "qoa_chaos_checkpoints_written_total",
    ] {
        if !exposition.contains(name) {
            violations.push(format!("metrics exposition is missing {name}"));
        }
    }
    if let Err(e) = parse_exposition(&exposition) {
        violations.push(format!("metrics exposition does not round-trip: {e}"));
    }
    if let Some(path) = &cli.metrics {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .unwrap_or_else(|e| panic!("creating {}: {e}", dir.display()));
            }
        }
        std::fs::write(path, &exposition)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("metrics: {} ({} bytes)", path.display(), exposition.len());
    }

    // Recovery-rate table.
    let mut table = Table::new(
        "Chaos sweep: injected faults and recovery rate by kind",
        &["fault kind", "injected", "recovered", "rate"],
    );
    for (kind, injected) in &totals.injected {
        let recovered = totals.recoveries.get(kind).copied().unwrap_or(0);
        let rate = if *injected == 0 {
            "n/a".to_string()
        } else {
            format!("{:.0}%", 100.0 * recovered as f64 / *injected as f64)
        };
        table.row(vec![
            (*kind).to_string(),
            injected.to_string(),
            recovered.to_string(),
            rate,
        ]);
    }
    println!("{}", table.render());
    println!(
        "cells: {cells} chaos + {degrade_cells} degrade; {recovered_cells} recovered-and-verified; \
         checkpoints {}, restores {}, verifier caught {} / missed {}",
        totals.checkpoints_written, totals.restores, totals.verifier_caught, totals.verifier_missed
    );

    if violations.is_empty() {
        println!("chaos: OK (no panics, typed errors only, differential oracle holds)");
    } else {
        for v in &violations {
            eprintln!("chaos VIOLATION: {v}");
        }
        eprintln!("chaos: {} violation(s)", violations.len());
        std::process::exit(1);
    }
}

fn merge(totals: &mut ChaosOutcome, cell: &ChaosOutcome) {
    for (k, n) in &cell.injected {
        *totals.injected.entry(k).or_insert(0) += n;
    }
    for (k, n) in &cell.recoveries {
        *totals.recoveries.entry(k).or_insert(0) += n;
    }
    totals.checkpoints_written += cell.checkpoints_written;
    totals.restores += cell.restores;
    totals.verifier_caught += cell.verifier_caught;
    totals.verifier_missed += cell.verifier_missed;
}
