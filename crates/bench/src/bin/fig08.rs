//! Fig. 8: per-benchmark CPI bars under the microarchitecture sweeps,
//! for PyPy with JIT on the paper's eight-benchmark subset.

use qoa_bench::{cell_chaos, cli, emit, harness, prewarm, sweep_subset, NA};
use qoa_core::harness::{shared_trace_cache, sweep_param_cell, sweep_param_spec, SweepCellPoint};
use qoa_core::report::{f3, Table};
use qoa_core::runtime::RuntimeConfig;
use qoa_core::sweeps::{SweepParam, SCALED_DEFAULT_NURSERY};
use qoa_model::RuntimeKind;
use qoa_uarch::UarchConfig;
use qoa_workloads::FIG8_BENCHMARKS;

fn main() {
    let cli = cli();
    let mut h = harness(&cli, "fig08");
    let suite = sweep_subset(&cli, qoa_workloads::python_suite(), &FIG8_BENCHMARKS);
    let rt = RuntimeConfig::new(RuntimeKind::PyPyJit).with_nursery(SCALED_DEFAULT_NURSERY);
    let base = UarchConfig::skylake();
    let chaos = cell_chaos(&cli);
    let mut specs = Vec::new();
    for &w in &suite {
        let cache = shared_trace_cache();
        for &param in SweepParam::ALL.iter() {
            specs.push(sweep_param_spec(w, cli.scale, &rt, &base, param, &cache, chaos));
        }
    }
    prewarm(&cli, &mut h, specs);

    // swept[workload][param] — the capture for a benchmark is shared
    // across the six parameters via the trace cache.
    let mut swept: Vec<(&str, Vec<Option<Vec<SweepCellPoint>>>)> = Vec::new();
    for w in &suite {
        eprintln!("sweeping {}...", w.name);
        let mut trace_cache = None;
        let per_param = SweepParam::ALL
            .iter()
            .map(|&param| {
                sweep_param_cell(&mut h, w, cli.scale, &rt, &base, param, &mut trace_cache)
            })
            .collect();
        swept.push((w.name, per_param));
    }

    for (pi, &param) in SweepParam::ALL.iter().enumerate() {
        let values = param.values();
        let mut cols: Vec<String> = vec!["benchmark".into()];
        cols.extend(values.iter().map(|&v| param.format_value(v)));
        let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(
            format!("Fig. 8: per-benchmark CPI (PyPy w/ JIT) vs {}", param.label()),
            &col_refs,
        );
        for (name, per_param) in &swept {
            let mut row = vec![name.to_string()];
            match &per_param[pi] {
                Some(pts) => row.extend(pts.iter().map(|p| f3(p.cpi))),
                None => row.extend(values.iter().map(|_| NA.to_string())),
            }
            t.row(row);
        }
        emit(&cli, &t);
    }
    std::process::exit(h.finish());
}
