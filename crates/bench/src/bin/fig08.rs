//! Fig. 8: per-benchmark CPI bars under the microarchitecture sweeps,
//! for PyPy with JIT on the paper's eight-benchmark subset.

use qoa_bench::{cli, emit, sweep_subset};
use qoa_core::report::{f3, Table};
use qoa_core::runtime::{capture, RuntimeConfig};
use qoa_core::sweeps::{sweep_trace, SweepParam, SCALED_DEFAULT_NURSERY};
use qoa_model::RuntimeKind;
use qoa_uarch::UarchConfig;
use qoa_workloads::FIG8_BENCHMARKS;

fn main() {
    let cli = cli();
    let suite = sweep_subset(&cli, qoa_workloads::python_suite(), &FIG8_BENCHMARKS);
    let rt = RuntimeConfig::new(RuntimeKind::PyPyJit).with_nursery(SCALED_DEFAULT_NURSERY);
    eprintln!("capturing {} benchmarks (PyPy w/ JIT)...", suite.len());
    let traces: Vec<_> = suite
        .iter()
        .map(|w| {
            (
                w.name,
                capture(&w.source(cli.scale), &rt)
                    .unwrap_or_else(|e| panic!("{}: {e}", w.name))
                    .trace,
            )
        })
        .collect();

    let base = UarchConfig::skylake();
    for param in SweepParam::ALL {
        let values = param.values();
        let mut cols: Vec<String> = vec!["benchmark".into()];
        cols.extend(values.iter().map(|&v| param.format_value(v)));
        let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(
            format!("Fig. 8: per-benchmark CPI (PyPy w/ JIT) vs {}", param.label()),
            &col_refs,
        );
        for (name, trace) in &traces {
            let pts = sweep_trace(trace, param, &base);
            let mut row = vec![name.to_string()];
            row.extend(pts.iter().map(|p| f3(p.cpi)));
            t.row(row);
        }
        emit(&cli, &t);
    }
}
