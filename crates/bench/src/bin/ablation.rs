//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **JIT pipeline stages** — interpreter-only vs. traces-without-bridges
//!    vs. the full pipeline: quantifies how much of the JIT's win comes
//!    from bridge compilation on branchy code (Fig. 2's "additional steps"
//!    discussion).
//! 2. **BTB capacity** — the paper finds indirect calls are ~11.9% of the
//!    C-function-call overhead and that BTB-focused prior work cannot
//!    remove the rest; this ablation removes/boosts the BTB and reports
//!    both the CPI delta and the instruction-level indirect-call share.
//! 3. **Nursery policy** — static half-of-LLC vs. maximum vs. best-per-app
//!    (the Fig. 17 policy comparison as a single table).

use qoa_bench::{cell_chaos, cli, emit, harness, prewarm, Cli, NA};
use qoa_core::harness::{best_nursery_cell, capture_cell, nursery_cells, nursery_spec, Harness};
use qoa_core::journal::{CellKey, CellMetrics, Metric};
use qoa_core::report::{f2, f3, pct, Table};
use qoa_core::runtime::{capture, RuntimeConfig};
use qoa_core::sweeps::{format_bytes, NURSERY_SIZES_SCALED};
use qoa_core::SupervisedCell;
use qoa_jit::JitConfig;
use qoa_model::{Category, OpKind, RuntimeKind};
use qoa_uarch::UarchConfig;
use qoa_workloads::by_name;

fn main() {
    let cli = cli();
    let mut h = harness(&cli, "ablation");
    prewarm_cells(&cli, &mut h);
    jit_stage_ablation(&cli, &mut h);
    btb_ablation(&cli, &mut h);
    nursery_policy_ablation(&cli, &mut h);
    std::process::exit(h.finish());
}

/// Runs every ablation cell through the supervised executor up front; the
/// per-study render loops below then answer from the journal.
fn prewarm_cells(cli: &Cli, h: &mut Harness) {
    let chaos = cell_chaos(cli);
    let scale = cli.scale;
    let mut specs = Vec::new();

    // Ablation 1: JIT pipeline stages. The PyPyVm is driven directly, so
    // these cells run without fault injection.
    let base = JitConfig { nursery_size: 512 << 10, ..JitConfig::default() };
    let stages = [
        ("interp-only", JitConfig { enabled: false, ..base }),
        ("no-bridges", JitConfig { bridge_threshold: u32::MAX, ..base }),
        ("full", base),
    ];
    for name in ["eparse", "go", "richards", "fannkuch"] {
        let w = by_name(name).expect("workload");
        for (tag, cfg) in stages {
            let key = CellKey::new(name, "PyPyJit", "jit-stage", tag);
            specs.push(SupervisedCell::new(key, move |deadline| {
                let uarch = UarchConfig::skylake();
                let cfg = JitConfig { deadline, ..cfg };
                let code = qoa_frontend::compile(&w.source(scale))?;
                let mut vm = qoa_jit::PyPyVm::new(cfg, qoa_uarch::TraceBuffer::new());
                vm.load_program(&code);
                vm.run()?;
                let (trace, _) = vm.vm.finish();
                let cycles = trace.simulate_ooo(&uarch).cycles;
                let mut m = CellMetrics::new();
                m.insert("cycles".into(), Metric::Int(cycles as i64));
                Ok(m)
            }));
        }
    }

    // Ablation 2: BTB capacity.
    for name in ["richards", "deltablue", "nbody"] {
        let w = by_name(name).expect("workload");
        let key = CellKey::new(name, "CPython", "btb", "ablation");
        let mkey = key.clone();
        specs.push(SupervisedCell::new(key, move |deadline| {
            let rt = RuntimeConfig::new(RuntimeKind::CPython).with_deadline(deadline);
            let run = capture_cell(&w.source(scale), &rt, chaos, &mkey)?;
            let mut ccall_ops = 0u64;
            let mut ccall_indirect = 0u64;
            for op in run.trace.ops() {
                if op.category == Category::CFunctionCall {
                    ccall_ops += 1;
                    if matches!(op.kind, OpKind::Call { indirect: true, .. } | OpKind::Ret) {
                        ccall_indirect += 1;
                    }
                }
            }
            let mut cfg_tiny = UarchConfig::skylake();
            cfg_tiny.branch.btb_entries = 16;
            let mut cfg_huge = UarchConfig::skylake();
            cfg_huge.branch.btb_entries = 1 << 16;
            let mut m = CellMetrics::new();
            m.insert("cpi_tiny".into(), Metric::Num(run.trace.simulate_ooo(&cfg_tiny).cpi()));
            m.insert(
                "cpi_base".into(),
                Metric::Num(run.trace.simulate_ooo(&UarchConfig::skylake()).cpi()),
            );
            m.insert("cpi_huge".into(), Metric::Num(run.trace.simulate_ooo(&cfg_huge).cpi()));
            m.insert(
                "indirect_share".into(),
                Metric::Num(ccall_indirect as f64 / ccall_ops.max(1) as f64),
            );
            Ok(m)
        }));
    }

    // Ablation 3: nursery policy.
    let rt = RuntimeConfig::new(RuntimeKind::PyPyJit);
    let uarch = UarchConfig::skylake();
    for name in ["spitfire", "unpack_seq", "html5lib", "telco"] {
        let w = by_name(name).expect("workload");
        for &n in NURSERY_SIZES_SCALED.iter() {
            specs.push(nursery_spec(w, scale, &rt, &uarch, n, "", chaos));
        }
    }

    prewarm(cli, h, specs);
}

fn jit_stage_ablation(cli: &Cli, h: &mut Harness) {
    let mut t = Table::new(
        "Ablation 1: JIT pipeline stages (cycles, OOO core)",
        &["benchmark", "interp-only", "traces only", "traces+bridges", "full speedup"],
    );
    let uarch = UarchConfig::skylake();
    for name in ["eparse", "go", "richards", "fannkuch"] {
        let w = by_name(name).expect("workload");
        let src = w.source(cli.scale);
        let mut stage = |tag: &str, cfg: JitConfig| -> Option<u64> {
            let key = CellKey::new(name, "PyPyJit", "jit-stage", tag);
            let metrics = h.cell(key, |deadline| {
                let cfg = JitConfig { deadline, ..cfg };
                let code = qoa_frontend::compile(&src)?;
                let mut vm = qoa_jit::PyPyVm::new(cfg, qoa_uarch::TraceBuffer::new());
                vm.load_program(&code);
                vm.run()?;
                let (trace, _) = vm.vm.finish();
                let cycles = trace.simulate_ooo(&uarch).cycles;
                let mut m = CellMetrics::new();
                m.insert("cycles".into(), Metric::Int(cycles as i64));
                Ok(m)
            })?;
            Some(metrics.get("cycles")?.as_i64()? as u64)
        };
        let base = JitConfig { nursery_size: 512 << 10, ..JitConfig::default() };
        let interp = stage("interp-only", JitConfig { enabled: false, ..base });
        let no_bridges = stage("no-bridges", JitConfig { bridge_threshold: u32::MAX, ..base });
        let full = stage("full", base);
        let cell = |v: Option<u64>| v.map_or(NA.into(), |c| c.to_string());
        let speedup = match (interp, full) {
            (Some(i), Some(f)) => format!("{}x", f2(i as f64 / f.max(1) as f64)),
            _ => NA.into(),
        };
        t.row(vec![name.to_string(), cell(interp), cell(no_bridges), cell(full), speedup]);
    }
    emit(cli, &t);
}

fn btb_ablation(cli: &Cli, h: &mut Harness) {
    let mut t = Table::new(
        "Ablation 2: BTB capacity on the CPython interpreter",
        &["benchmark", "CPI tiny BTB", "CPI baseline", "CPI huge BTB", "indirect share of C-call ops"],
    );
    for name in ["richards", "deltablue", "nbody"] {
        let w = by_name(name).expect("workload");
        let key = CellKey::new(name, "CPython", "btb", "ablation");
        let metrics = h.cell(key, |deadline| {
            let rt = RuntimeConfig::new(RuntimeKind::CPython).with_deadline(deadline);
            let run = capture(&w.source(cli.scale), &rt)?;
            // Instruction-level share: indirect call/branch ops within the
            // C-function-call category (paper: 11.9% average).
            let mut ccall_ops = 0u64;
            let mut ccall_indirect = 0u64;
            for op in run.trace.ops() {
                if op.category == Category::CFunctionCall {
                    ccall_ops += 1;
                    if matches!(op.kind, OpKind::Call { indirect: true, .. } | OpKind::Ret) {
                        ccall_indirect += 1;
                    }
                }
            }
            let mut cfg_tiny = UarchConfig::skylake();
            cfg_tiny.branch.btb_entries = 16;
            let mut cfg_huge = UarchConfig::skylake();
            cfg_huge.branch.btb_entries = 1 << 16;
            let mut m = CellMetrics::new();
            m.insert("cpi_tiny".into(), Metric::Num(run.trace.simulate_ooo(&cfg_tiny).cpi()));
            m.insert(
                "cpi_base".into(),
                Metric::Num(run.trace.simulate_ooo(&UarchConfig::skylake()).cpi()),
            );
            m.insert("cpi_huge".into(), Metric::Num(run.trace.simulate_ooo(&cfg_huge).cpi()));
            m.insert(
                "indirect_share".into(),
                Metric::Num(ccall_indirect as f64 / ccall_ops.max(1) as f64),
            );
            Ok(m)
        });
        let get = |n: &str| metrics.as_ref().and_then(|m| m.get(n)?.as_f64());
        t.row(vec![
            name.to_string(),
            get("cpi_tiny").map_or(NA.into(), f3),
            get("cpi_base").map_or(NA.into(), f3),
            get("cpi_huge").map_or(NA.into(), f3),
            get("indirect_share").map_or(NA.into(), pct),
        ]);
    }
    emit(cli, &t);
}

fn nursery_policy_ablation(cli: &Cli, h: &mut Harness) {
    let mut t = Table::new(
        "Ablation 3: nursery policy (cycles normalized to the 1MB static policy)",
        &["benchmark", "half-LLC (1MB)", "maximum", "best-per-app", "best size"],
    );
    let uarch = UarchConfig::skylake();
    let rt = RuntimeConfig::new(RuntimeKind::PyPyJit);
    for name in ["spitfire", "unpack_seq", "html5lib", "telco"] {
        let w = by_name(name).expect("workload");
        let pts = nursery_cells(h, w, cli.scale, &rt, &uarch, &NURSERY_SIZES_SCALED);
        let baseline = pts
            .iter()
            .flatten()
            .find(|p| p.nursery == (1 << 20))
            .map(|p| p.cycles as f64);
        let (Some(baseline), Some(max), Some(best)) =
            (baseline, pts.last().cloned().flatten(), best_nursery_cell(&pts))
        else {
            t.row(vec![name.to_string(), NA.into(), NA.into(), NA.into(), NA.into()]);
            continue;
        };
        t.row(vec![
            name.to_string(),
            "1.000".into(),
            f3(max.cycles as f64 / baseline),
            f3(best.cycles as f64 / baseline),
            format_bytes(best.nursery),
        ]);
    }
    emit(cli, &t);
}
