//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **JIT pipeline stages** — interpreter-only vs. traces-without-bridges
//!    vs. the full pipeline: quantifies how much of the JIT's win comes
//!    from bridge compilation on branchy code (Fig. 2's "additional steps"
//!    discussion).
//! 2. **BTB capacity** — the paper finds indirect calls are ~11.9% of the
//!    C-function-call overhead and that BTB-focused prior work cannot
//!    remove the rest; this ablation removes/boosts the BTB and reports
//!    both the CPI delta and the instruction-level indirect-call share.
//! 3. **Nursery policy** — static half-of-LLC vs. maximum vs. best-per-app
//!    (the Fig. 17 policy comparison as a single table).

use qoa_bench::{cli, emit};
use qoa_core::report::{f2, f3, pct, Table};
use qoa_core::runtime::{capture, RuntimeConfig};
use qoa_core::sweeps::{best_nursery, format_bytes, nursery_sweep, NURSERY_SIZES_SCALED};
use qoa_jit::JitConfig;
use qoa_model::{Category, CountingSink, OpKind, RuntimeKind};
use qoa_uarch::UarchConfig;
use qoa_workloads::by_name;

fn main() {
    let cli = cli();
    jit_stage_ablation(&cli);
    btb_ablation(&cli);
    nursery_policy_ablation(&cli);
}

fn jit_stage_ablation(cli: &qoa_bench::Cli) {
    let mut t = Table::new(
        "Ablation 1: JIT pipeline stages (cycles, OOO core)",
        &["benchmark", "interp-only", "traces only", "traces+bridges", "full speedup"],
    );
    let uarch = UarchConfig::skylake();
    for name in ["eparse", "go", "richards", "fannkuch"] {
        let w = by_name(name).expect("workload");
        let src = w.source(cli.scale);
        let run = |cfg: JitConfig| {
            let code = qoa_frontend::compile(&src).expect("compiles");
            let mut vm = qoa_jit::PyPyVm::new(cfg, qoa_uarch::TraceBuffer::new());
            vm.load_program(&code);
            vm.run().expect("runs");
            let (trace, _) = vm.vm.finish();
            trace.simulate_ooo(&uarch).cycles
        };
        let base = JitConfig { nursery_size: 512 << 10, ..JitConfig::default() };
        let interp = run(JitConfig { enabled: false, ..base });
        let no_bridges = run(JitConfig { bridge_threshold: u32::MAX, ..base });
        let full = run(base);
        t.row(vec![
            name.to_string(),
            interp.to_string(),
            no_bridges.to_string(),
            full.to_string(),
            format!("{}x", f2(interp as f64 / full as f64)),
        ]);
    }
    emit(cli, &t);
}

fn btb_ablation(cli: &qoa_bench::Cli) {
    let mut t = Table::new(
        "Ablation 2: BTB capacity on the CPython interpreter",
        &["benchmark", "CPI tiny BTB", "CPI baseline", "CPI huge BTB", "indirect share of C-call ops"],
    );
    for name in ["richards", "deltablue", "nbody"] {
        let w = by_name(name).expect("workload");
        let run = capture(&w.source(cli.scale), &RuntimeConfig::new(RuntimeKind::CPython))
            .expect("runs");
        // Instruction-level share: indirect call/branch ops within the
        // C-function-call category (paper: 11.9% average).
        let mut ccall_ops = 0u64;
        let mut ccall_indirect = 0u64;
        for op in run.trace.ops() {
            if op.category == Category::CFunctionCall {
                ccall_ops += 1;
                if matches!(op.kind, OpKind::Call { indirect: true, .. } | OpKind::Ret) {
                    ccall_indirect += 1;
                }
            }
        }
        let mut cfg_tiny = UarchConfig::skylake();
        cfg_tiny.branch.btb_entries = 16;
        let mut cfg_huge = UarchConfig::skylake();
        cfg_huge.branch.btb_entries = 1 << 16;
        let tiny = run.trace.simulate_ooo(&cfg_tiny).cpi();
        let base = run.trace.simulate_ooo(&UarchConfig::skylake()).cpi();
        let huge = run.trace.simulate_ooo(&cfg_huge).cpi();
        t.row(vec![
            name.to_string(),
            f3(tiny),
            f3(base),
            f3(huge),
            pct(ccall_indirect as f64 / ccall_ops.max(1) as f64),
        ]);
    }
    emit(cli, &t);
    let _ = CountingSink::new();
}

fn nursery_policy_ablation(cli: &qoa_bench::Cli) {
    let mut t = Table::new(
        "Ablation 3: nursery policy (cycles normalized to the 1MB static policy)",
        &["benchmark", "half-LLC (1MB)", "maximum", "best-per-app", "best size"],
    );
    let uarch = UarchConfig::skylake();
    let rt = RuntimeConfig::new(RuntimeKind::PyPyJit);
    for name in ["spitfire", "unpack_seq", "html5lib", "telco"] {
        let w = by_name(name).expect("workload");
        let pts = nursery_sweep(w, cli.scale, &rt, &uarch, &NURSERY_SIZES_SCALED)
            .expect("sweeps");
        let baseline = pts
            .iter()
            .find(|p| p.nursery == (1 << 20))
            .expect("1MB point")
            .cycles as f64;
        let max = pts.last().expect("points").cycles as f64;
        let best = best_nursery(&pts);
        t.row(vec![
            name.to_string(),
            "1.000".into(),
            f3(max / baseline),
            f3(best.cycles as f64 / baseline),
            format_bytes(best.nursery),
        ]);
    }
    emit(cli, &t);
}
