//! Table I: the simulated machine configuration (ZSim/Skylake analog).

use qoa_bench::{cli, emit};
use qoa_core::report::Table;
use qoa_core::sweeps::format_bytes;
use qoa_uarch::UarchConfig;

fn main() {
    let cli = cli();
    let c = UarchConfig::skylake();
    let mut t = Table::new("Table I: simulator configuration", &["component", "setting"]);
    t.row(vec![
        "Core".into(),
        format!(
            "{}-way OOO, {}B fetch, {} ROB, {} Load-Q, {} Store-Q",
            c.core.issue_width, c.core.fetch_bytes, c.core.rob_size, c.core.load_queue,
            c.core.store_queue
        ),
    ]);
    t.row(vec![
        "Branch predictor".into(),
        format!(
            "2-level with {}x{}b L1, {}x2b L2, {}-entry BTB, {}-cycle mispredict",
            c.branch.l1_entries,
            c.branch.history_bits,
            c.branch.l2_entries,
            c.branch.btb_entries,
            c.branch.mispredict_penalty
        ),
    ]);
    for (name, l) in [("L1I", &c.l1i), ("L1D", &c.l1d), ("L2", &c.l2), ("L3", &c.l3)] {
        t.row(vec![
            name.into(),
            format!(
                "{}, {}-way, {} B lines, {}-cycle latency",
                format_bytes(l.size),
                l.assoc,
                l.line,
                l.latency
            ),
        ]);
    }
    t.row(vec![
        "Memory".into(),
        format!(
            "{}-cycle latency, {} MB/s ({} GHz clock)",
            c.mem.latency,
            c.mem.bandwidth_mbps,
            c.mem.clock_hz as f64 / 1e9
        ),
    ]);
    emit(&cli, &t);
}
