//! Fig. 4: CPython overhead breakdown per benchmark.
//!
//! Panel (a) shows the language-feature categories, panel (b) the
//! interpreter-operation categories, both as % of total execution cycles
//! on the simple core, plus the AVG row and the paper's headline scalars.

use qoa_bench::{cell_chaos, cli, emit, harness, limit, prewarm};
use qoa_core::attribution::{average_shares, Breakdown};
use qoa_core::harness::{breakdown_cell, breakdown_spec};
use qoa_core::report::{pct, Table};
use qoa_core::runtime::RuntimeConfig;
use qoa_model::{Category, CategoryMap, RuntimeKind};
use qoa_uarch::UarchConfig;

fn panel(title: &str, cats: &[Category], rows: &[Breakdown], avg: &CategoryMap<f64>) -> Table {
    let mut cols: Vec<&str> = vec!["benchmark"];
    let labels: Vec<String> = cats.iter().map(|c| c.label().to_string()).collect();
    cols.extend(labels.iter().map(|s| s.as_str()));
    let mut t = Table::new(title, &cols);
    for b in rows {
        let mut cells = vec![b.name.clone()];
        cells.extend(cats.iter().map(|&c| pct(b.shares[c])));
        t.row(cells);
    }
    let mut cells = vec!["AVG".to_string()];
    cells.extend(cats.iter().map(|&c| pct(avg[c])));
    t.row(cells);
    t
}

fn main() {
    let cli = cli();
    let mut h = harness(&cli, "fig04");
    let suite = limit(&cli, qoa_workloads::python_suite());
    let rt = RuntimeConfig::new(RuntimeKind::CPython);
    let uarch = UarchConfig::skylake();
    let chaos = cell_chaos(&cli);
    prewarm(
        &cli,
        &mut h,
        suite.iter().map(|&w| breakdown_spec(w, cli.scale, &rt, &uarch, chaos)).collect(),
    );
    let mut breakdowns: Vec<Breakdown> = Vec::new();
    for w in &suite {
        eprintln!("running {}...", w.name);
        if let Some(b) = breakdown_cell(&mut h, w, cli.scale, &rt, &uarch) {
            breakdowns.push(b);
        }
    }
    if breakdowns.is_empty() {
        eprintln!("no benchmark produced a breakdown");
        std::process::exit(h.finish().max(1));
    }
    let avg = average_shares(&breakdowns);

    emit(
        &cli,
        &panel(
            "Fig. 4(a): language features (% of execution cycles, CPython)",
            &Category::LANGUAGE_FEATURES,
            &breakdowns,
            &avg,
        ),
    );
    emit(
        &cli,
        &panel(
            "Fig. 4(b): interpreter operations (% of execution cycles, CPython)",
            &Category::INTERPRETER_OPERATIONS,
            &breakdowns,
            &avg,
        ),
    );
    if breakdowns.len() < suite.len() {
        println!(
            "(averages over the {} of {} benchmarks that ran)",
            breakdowns.len(),
            suite.len()
        );
    }

    // Headline scalars (§IV-C.1).
    let overhead_avg: f64 =
        breakdowns.iter().map(|b| b.overhead_share()).sum::<f64>() / breakdowns.len() as f64;
    let clib_avg = avg[Category::CLibrary];
    let heavy: Vec<&str> = breakdowns
        .iter()
        .filter(|b| b.shares[Category::CLibrary] > 0.64)
        .map(|b| b.name.as_str())
        .collect();
    println!("headline scalars (paper value in brackets):");
    println!("  C function call avg      {} [18.4%]", pct(avg[Category::CFunctionCall]));
    println!("  Dispatch avg             {} [14.2%]", pct(avg[Category::Dispatch]));
    println!("  Name resolution avg      {} [9.1%]", pct(avg[Category::NameResolution]));
    println!("  Function setup avg       {} [4.8%]", pct(avg[Category::FunctionSetup]));
    println!("  identified overheads avg {} [64.9%]", pct(overhead_avg));
    println!(
        "  implied slowdown floor   {:.1}x [2.8x]",
        1.0 / (1.0 - overhead_avg)
    );
    println!("  C library avg            {} [7.0%]", pct(clib_avg));
    println!("  >64% C-library group     {heavy:?}");
    std::process::exit(h.finish());
}
