//! Fig. 12: average normalized execution time across nursery sizes for
//! four configurations — PyPy w/o JIT at a 2 MB LLC, and PyPy w/ JIT at
//! 2/4/8 MB LLCs — each normalized to its own 1 MB-nursery run.

use qoa_bench::{cell_chaos, cli, emit, harness, prewarm, sweep_subset, NA};
use qoa_core::harness::{nursery_cells_tagged, nursery_spec};
use qoa_core::report::{f3, Table};
use qoa_core::runtime::RuntimeConfig;
use qoa_core::sweeps::{format_bytes, NURSERY_SIZES_SCALED as NURSERY_SIZES};
use qoa_model::RuntimeKind;
use qoa_uarch::UarchConfig;
use qoa_workloads::FIG14_BENCHMARKS;

fn main() {
    let cli = cli();
    let mut h = harness(&cli, "fig12");
    let suite = sweep_subset(&cli, qoa_workloads::python_suite(), &FIG14_BENCHMARKS);
    let configs: [(&str, RuntimeKind, u64); 4] = [
        ("w/o JIT 2MB LLC", RuntimeKind::PyPyNoJit, 2 << 20),
        ("w/ JIT 2MB LLC", RuntimeKind::PyPyJit, 2 << 20),
        ("w/ JIT 4MB LLC", RuntimeKind::PyPyJit, 4 << 20),
        ("w/ JIT 8MB LLC", RuntimeKind::PyPyJit, 8 << 20),
    ];
    let baseline_idx = NURSERY_SIZES
        .iter()
        .position(|&b| b == (1 << 20))
        .expect("1MB nursery is in the sweep");

    let chaos = cell_chaos(&cli);
    let mut specs = Vec::new();
    for (_, kind, llc) in configs {
        let rt = RuntimeConfig::new(kind);
        let uarch = UarchConfig::skylake().with_llc_size(llc);
        let tag = format!("@llc={}", format_bytes(llc));
        for &w in &suite {
            for &n in NURSERY_SIZES.iter() {
                specs.push(nursery_spec(w, cli.scale, &rt, &uarch, n, &tag, chaos));
            }
        }
    }
    prewarm(&cli, &mut h, specs);

    let mut cols: Vec<String> = vec!["configuration".into()];
    cols.extend(NURSERY_SIZES.iter().map(|&b| format_bytes(b)));
    let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Fig. 12: normalized execution time vs nursery size (avg, per-config 1MB baseline)",
        &col_refs,
    );

    for (label, kind, llc) in configs {
        eprintln!("config {label}...");
        let rt = RuntimeConfig::new(kind);
        let uarch = UarchConfig::skylake().with_llc_size(llc);
        // The same (workload, runtime, nursery) triple is measured under
        // several LLC sizes; the tag keeps their journal cells distinct.
        let tag = format!("@llc={}", format_bytes(llc));
        let mut norm = vec![0.0f64; NURSERY_SIZES.len()];
        let mut count = vec![0usize; NURSERY_SIZES.len()];
        for w in &suite {
            let pts = nursery_cells_tagged(&mut h, w, cli.scale, &rt, &uarch, &NURSERY_SIZES, &tag);
            // Normalization needs the workload's own baseline point.
            let Some(baseline) = &pts[baseline_idx] else { continue };
            let base = baseline.cycles.max(1) as f64;
            for (i, p) in pts.iter().enumerate() {
                let Some(p) = p else { continue };
                norm[i] += p.cycles as f64 / base;
                count[i] += 1;
            }
        }
        let mut row = vec![label.to_string()];
        row.extend(
            norm.iter()
                .zip(&count)
                .map(|(v, &c)| if c == 0 { NA.into() } else { f3(v / c as f64) }),
        );
        t.row(row);
    }
    emit(&cli, &t);
    std::process::exit(h.finish());
}
