//! Shared scaffolding for the figure/table regeneration binaries.
//!
//! Every binary accepts the same flags:
//!
//! * `--scale tiny|small|full` — workload size (default `small`; the paper's
//!   qualitative shapes appear at every scale, but the GC-related
//!   magnitudes need the allocation volume of `small` or `full`).
//! * `--subset N` — limit per-benchmark experiments to the first `N`
//!   benchmarks of the relevant suite (sweep binaries default to the
//!   paper's own per-benchmark subsets).
//! * `--all` — run the complete suite even for sweep binaries.
//! * `--csv` — emit CSV instead of aligned text.
//! * `--fresh` — ignore the run journal and re-measure everything.
//! * `--deadline-secs N` — wall-clock deadline per measurement cell.
//! * `--max-failure-rate F` — failure rate (0–1) above which the binary
//!   exits nonzero (default 0.25).
//! * `--journal-dir DIR` — where run journals live (default `results/`).
//! * `--jobs N` — worker threads for the supervised parallel executor
//!   (default: available parallelism). `--jobs 1` runs the same
//!   supervision pipeline on a single worker; outcomes are identical for
//!   any jobs count by the executor's determinism contract.
//! * `--seed N` — executor seed (retry backoff schedules; default 0).
//! * `--budget N` — admission budget in cell cost units; cells beyond it
//!   are shed lowest-priority-first (recorded `shed`, not `failed`).
//! * `--chaos-seed N` — run every prewarmed cell under a seeded chaos
//!   fault plan (recovered faults; measured results stay identical to
//!   fault-free runs by the differential oracle).
//! * `--exec-metrics` — print the executor's scheduler counters to
//!   stderr as Prometheus text exposition after the prewarm pass.

use qoa_core::harness::CellChaos;
use qoa_core::report::Table;
use qoa_core::{
    available_jobs, CellMetrics, ExecutorOptions, Harness, HarnessOptions, SupervisedCell,
};
use qoa_workloads::{Scale, Workload};
use std::path::PathBuf;
use std::time::Duration;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Workload scale.
    pub scale: Scale,
    /// Optional benchmark-count limit.
    pub subset: Option<usize>,
    /// Run complete suites in sweep binaries.
    pub all: bool,
    /// CSV output.
    pub csv: bool,
    /// Ignore the run journal.
    pub fresh: bool,
    /// Per-cell wall-clock deadline in seconds.
    pub deadline_secs: Option<u64>,
    /// Failure rate above which the run exits nonzero.
    pub max_failure_rate: f64,
    /// Journal directory.
    pub journal_dir: PathBuf,
    /// Worker threads for the supervised parallel executor.
    pub jobs: usize,
    /// Executor seed (deterministic retry backoff schedules).
    pub seed: u64,
    /// Admission budget in cell cost units (`None` = admit everything).
    pub budget: Option<u64>,
    /// Seed for per-cell chaos fault plans during prewarm.
    pub chaos_seed: Option<u64>,
    /// Print executor scheduler metrics to stderr after prewarm.
    pub exec_metrics: bool,
    /// Run the static-optimization mode (`fig04-static --opt`).
    pub opt: bool,
    /// Optimization level for `--opt` runs (default: the highest).
    pub opt_level: u8,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            scale: Scale::Small,
            subset: None,
            all: false,
            csv: false,
            fresh: false,
            deadline_secs: None,
            max_failure_rate: 0.25,
            journal_dir: PathBuf::from("results"),
            jobs: available_jobs(),
            seed: 0,
            budget: None,
            chaos_seed: None,
            exec_metrics: false,
            opt: false,
            opt_level: qoa_analysis::MAX_OPT_LEVEL,
        }
    }
}

/// Opens the resumable harness for `figure` under the CLI's options.
///
/// The configuration fingerprint covers everything that changes a cell's
/// *measured values* (currently the workload scale); cell identity covers
/// the rest, so journals survive subset/ordering changes.
///
/// # Panics
///
/// Panics when an existing journal cannot be read.
pub fn harness(cli: &Cli, figure: &str) -> Harness {
    // `opt=` joins the fingerprint only when the optimizer is in play, so
    // every pre-existing journal stays valid verbatim.
    let fingerprint = if cli.opt {
        format!("scale={:?},opt={}", cli.scale, cli.opt_level)
    } else {
        format!("scale={:?}", cli.scale)
    };
    let mut opts = HarnessOptions::new(figure, fingerprint);
    opts.journal_dir = cli.journal_dir.clone();
    opts.fresh = cli.fresh;
    opts.deadline = cli.deadline_secs.map(Duration::from_secs);
    opts.max_failure_rate = cli.max_failure_rate;
    Harness::open(opts).unwrap_or_else(|e| panic!("cannot open run journal: {e}"))
}

/// Cell text for a failed measurement in a report.
pub const NA: &str = "n/a";

/// Parses `std::env::args`.
///
/// # Panics
///
/// Panics with a usage message on unknown flags.
pub fn cli() -> Cli {
    let mut out = Cli::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                out.scale = match v.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    other => panic!("unknown scale '{other}' (tiny|small|full)"),
                };
            }
            "--subset" => {
                let v = args.next().unwrap_or_default();
                out.subset = Some(v.parse().expect("--subset takes a count"));
            }
            "--all" => out.all = true,
            "--csv" => out.csv = true,
            "--fresh" => out.fresh = true,
            "--deadline-secs" => {
                let v = args.next().unwrap_or_default();
                out.deadline_secs = Some(v.parse().expect("--deadline-secs takes seconds"));
            }
            "--max-failure-rate" => {
                let v = args.next().unwrap_or_default();
                out.max_failure_rate = v.parse().expect("--max-failure-rate takes a fraction");
            }
            "--journal-dir" => {
                out.journal_dir = PathBuf::from(args.next().unwrap_or_default());
            }
            "--jobs" => {
                let v = args.next().unwrap_or_default();
                out.jobs = v.parse().expect("--jobs takes a thread count");
            }
            "--seed" => {
                let v = args.next().unwrap_or_default();
                out.seed = v.parse().expect("--seed takes an integer");
            }
            "--budget" => {
                let v = args.next().unwrap_or_default();
                out.budget = Some(v.parse().expect("--budget takes a cost total"));
            }
            "--chaos-seed" => {
                let v = args.next().unwrap_or_default();
                out.chaos_seed = Some(v.parse().expect("--chaos-seed takes an integer"));
            }
            "--exec-metrics" => out.exec_metrics = true,
            "--opt" => out.opt = true,
            "--opt-level" => {
                let v = args.next().unwrap_or_default();
                out.opt_level = v.parse().expect("--opt-level takes 0..=2");
                out.opt = true;
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --scale tiny|small|full  --subset N  --all  --csv  --fresh  \
                     --deadline-secs N  --max-failure-rate F  --journal-dir DIR  --jobs N  \
                     --seed N  --budget N  --chaos-seed N  --exec-metrics  --opt  --opt-level N"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag '{other}' (try --help)"),
        }
    }
    out
}

/// The executor configuration implied by the CLI: thread count, seed,
/// budget, and the per-cell deadline (which also arms the watchdog).
pub fn executor_options(cli: &Cli) -> ExecutorOptions {
    let mut opts = ExecutorOptions::new(cli.jobs.max(1));
    opts.seed = cli.seed;
    opts.budget = cli.budget;
    opts.cell_deadline = cli.deadline_secs.map(Duration::from_secs);
    opts
}

/// The per-cell chaos configuration implied by `--chaos-seed`, if any.
pub fn cell_chaos(cli: &Cli) -> Option<CellChaos> {
    cli.chaos_seed.map(|seed| CellChaos { seed, horizon: 20_000, points: 3 })
}

/// Runs the figure's cell specs through the supervised parallel executor
/// (journaling every outcome, so the sequential render loop that follows
/// answers each cell from the journal) and honours `--exec-metrics`.
pub fn prewarm(cli: &Cli, h: &mut Harness, specs: Vec<SupervisedCell<CellMetrics>>) {
    let stats = h.prewarm(specs, &executor_options(cli));
    if cli.exec_metrics {
        let mut reg = qoa_obs::metrics::Registry::new();
        stats.export(&mut reg);
        eprint!("{}", reg.expose());
    }
}

/// Applies the subset limit to a suite.
pub fn limit<'w>(cli: &Cli, suite: &'w [Workload]) -> Vec<&'w Workload> {
    let n = cli.subset.unwrap_or(suite.len());
    suite.iter().take(n).collect()
}

/// The per-benchmark subset used by the sweep binaries unless `--all`.
pub fn sweep_subset<'w>(cli: &Cli, suite: &'w [Workload], names: &[&str]) -> Vec<&'w Workload> {
    if cli.all {
        return limit(cli, suite);
    }
    match cli.subset {
        Some(n) => suite.iter().take(n).collect(),
        None => suite.iter().filter(|w| names.contains(&w.name)).collect(),
    }
}

/// Prints a table per the CLI's format choice.
pub fn emit(cli: &Cli, table: &Table) {
    if cli.csv {
        print!("{}", table.to_csv());
    } else {
        println!("{}", table.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limit_respects_subset() {
        let cli = Cli { subset: Some(3), ..Cli::default() };
        let suite = qoa_workloads::python_suite();
        assert_eq!(limit(&cli, suite).len(), 3);
        let cli = Cli::default();
        assert_eq!(limit(&cli, suite).len(), suite.len());
    }

    #[test]
    fn sweep_subset_defaults_to_named() {
        let cli = Cli::default();
        let suite = qoa_workloads::python_suite();
        let sel = sweep_subset(&cli, suite, &qoa_workloads::FIG8_BENCHMARKS);
        assert_eq!(sel.len(), qoa_workloads::FIG8_BENCHMARKS.len());
    }
}
