//! Criterion benchmarks for the simulation stack itself: how fast the
//! cache hierarchy, cores, interpreter and JIT execute on the host.
//!
//! The table/figure regeneration harnesses are the `fig*`/`table*`
//! binaries; these benches track the throughput that makes those harnesses
//! practical (`cargo bench -p qoa-bench`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qoa_core::runtime::{capture, run_with_sink, RuntimeConfig};
use qoa_model::{Category, CountingSink, MicroOp, OpKind, OpSink, Pc, Phase, RuntimeKind};
use qoa_uarch::{Cache, CacheConfig, OooCore, SimpleCore, UarchConfig};
use qoa_workloads::{by_name, Scale};

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    let accesses: Vec<u64> = (0..64 * 1024u64).map(|i| (i * 2654435761) % (8 << 20)).collect();
    g.throughput(Throughput::Elements(accesses.len() as u64));
    g.bench_function("l1_random_access", |b| {
        let mut cache = Cache::new(CacheConfig { size: 64 << 10, assoc: 8, line: 64, latency: 4 });
        b.iter(|| {
            let mut hits = 0u64;
            for &a in &accesses {
                hits += cache.access(a) as u64;
            }
            hits
        });
    });
    g.finish();
}

fn synthetic_trace(n: usize) -> Vec<MicroOp> {
    (0..n)
        .map(|i| {
            let kind = match i % 5 {
                0 => OpKind::Load { addr: 0x5_0000_0000 + ((i * 64) as u64 % (4 << 20)), size: 8 },
                1 => OpKind::Store { addr: 0x5_0000_0000 + ((i * 32) as u64 % (1 << 20)), size: 8 },
                2 => OpKind::Branch { taken: i % 3 == 0, target: Pc(0x40_0100), indirect: i % 7 == 0 },
                _ => OpKind::Alu,
            };
            MicroOp {
                pc: Pc(0x40_0000 + ((i % 256) as u64) * 4),
                kind,
                category: Category::from_index(i % 16),
                phase: Phase::Interpreter,
            }
        })
        .collect()
}

fn bench_cores(c: &mut Criterion) {
    let ops = synthetic_trace(200_000);
    let cfg = UarchConfig::skylake();
    let mut g = c.benchmark_group("cores");
    g.throughput(Throughput::Elements(ops.len() as u64));
    g.bench_function("simple_core", |b| {
        b.iter(|| {
            let mut core = SimpleCore::new(&cfg);
            for op in &ops {
                core.op(*op);
            }
            core.finish().cycles
        });
    });
    g.bench_function("ooo_core", |b| {
        b.iter(|| {
            let mut core = OooCore::new(&cfg);
            for op in &ops {
                core.op(*op);
            }
            core.finish().cycles
        });
    });
    g.finish();
}

fn bench_runtimes(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtimes");
    g.sample_size(10);
    let w = by_name("fannkuch").expect("workload");
    let src = w.source(Scale::Tiny);
    for kind in [RuntimeKind::CPython, RuntimeKind::PyPyNoJit, RuntimeKind::PyPyJit] {
        g.bench_with_input(BenchmarkId::new("execute", kind.label()), &kind, |b, &kind| {
            b.iter(|| {
                let rt = RuntimeConfig::new(kind);
                run_with_sink(&src, &rt, CountingSink::new())
                    .expect("runs")
                    .0
                    .total()
            });
        });
    }
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    let w = by_name("unpack_seq").expect("workload");
    let src = w.source(Scale::Tiny);
    let run = capture(&src, &RuntimeConfig::new(RuntimeKind::CPython)).expect("runs");
    let cfg = UarchConfig::skylake();
    g.throughput(Throughput::Elements(run.trace.len() as u64));
    g.bench_function("trace_replay_ooo", |b| {
        b.iter(|| run.trace.simulate_ooo(&cfg).cycles);
    });
    g.bench_function("trace_replay_simple", |b| {
        b.iter(|| run.trace.simulate_simple(&cfg).cycles);
    });
    g.finish();
}

criterion_group!(benches, bench_cache, bench_cores, bench_runtimes, bench_end_to_end);
criterion_main!(benches);
